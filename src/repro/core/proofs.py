"""Ledger proof objects.

A Spitz proof binds three layers (Section 5.3):

1. the **SIRI path** — the POS-tree nodes from the block's index root
   down to the queried entry;
2. the **block** — the header whose digest commits to that index root;
3. the **chain** — the hash-chain digest that commits to the block.

A client holding a trusted :class:`~repro.core.ledger.LedgerDigest`
can therefore detect tampering with the value, with the index, with
the block, or with history ordering, by recomputing digests bottom-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.hashing import Digest
from repro.indexes.pos_tree import PosMultiProof, PosRangeProof, PosTree
from repro.indexes.siri import SiriProof


@dataclass(frozen=True)
class BlockWitness:
    """The block-header fields a proof needs to re-derive the block
    digest, plus the chain digest the block was sealed under."""

    height: int
    previous_chain_digest: Digest
    tree_root: Digest
    writes_digest: Digest
    statements_digest: Digest
    chain_digest: Digest


#: Wire weight of one :class:`BlockWitness`: five 32-byte digests plus
#: an 8-byte height.  (Historically charged as ``6 * 32``, overstating
#: every ``ledger.proof_bytes`` observation by 32 bytes.)
BLOCK_WITNESS_BYTES = 5 * 32 + 8


@dataclass(frozen=True)
class LedgerProof:
    """Proof for one point read (or proven absence)."""

    siri: SiriProof
    block: BlockWitness

    @property
    def key(self) -> bytes:
        return self.siri.key

    @property
    def value(self) -> Optional[bytes]:
        return self.siri.value

    @property
    def size_bytes(self) -> int:
        return self.siri.size_bytes + BLOCK_WITNESS_BYTES

    def verify(
        self,
        trusted_chain_digest: Digest,
        node_cache: Optional[dict] = None,
        block_cache: Optional[set] = None,
    ) -> bool:
        """Check the full binding against a trusted chain digest.

        ``node_cache``/``block_cache`` (managed by
        :class:`~repro.core.verifier.ClientVerifier`) memoize
        already-verified index nodes and block headers across proofs —
        the cost model behind Section 5.3's deferred scheme.
        """
        if self.block.chain_digest != trusted_chain_digest:
            return False
        if not _check_block(self.block, block_cache):
            return False
        return PosTree.verify_proof(
            self.siri, self.block.tree_root, node_cache
        )


@dataclass(frozen=True)
class LedgerRangeProof:
    """Proof covering every entry of a range scan in one object.

    This is what makes verified range queries cheap in Spitz
    (Section 6.2.2): the proof is gathered during the same traversal
    that produced the results, instead of one journal search per
    record.
    """

    range_proof: PosRangeProof
    block: BlockWitness

    @property
    def entries(self) -> Tuple[Tuple[bytes, bytes], ...]:
        return self.range_proof.entries

    @property
    def size_bytes(self) -> int:
        return self.range_proof.size_bytes + BLOCK_WITNESS_BYTES

    def verify(
        self,
        trusted_chain_digest: Digest,
        node_cache: Optional[dict] = None,
        block_cache: Optional[set] = None,
    ) -> bool:
        if self.block.chain_digest != trusted_chain_digest:
            return False
        if not _check_block(self.block, block_cache):
            return False
        return self.range_proof.verify(self.block.tree_root, node_cache)


@dataclass(frozen=True)
class LedgerMultiProof:
    """Proof for K point reads sharing one block witness.

    The batched analogue of :class:`LedgerProof`: the inner
    :class:`~repro.indexes.pos_tree.PosMultiProof` deduplicates index
    nodes across the K keys, and the :class:`BlockWitness` — identical
    for every key answered against the same sealed block — is bound
    once instead of K times.  Verification is the same three-layer
    recomputation: chain digest, block digest, then every key's path
    under the block's index root.
    """

    multi: PosMultiProof
    block: BlockWitness

    @property
    def entries(self) -> Tuple[Tuple[bytes, Optional[bytes]], ...]:
        return self.multi.entries

    @property
    def keys(self) -> Tuple[bytes, ...]:
        return self.multi.keys

    @property
    def size_bytes(self) -> int:
        return self.multi.size_bytes + BLOCK_WITNESS_BYTES

    def verify(
        self,
        trusted_chain_digest: Digest,
        node_cache: Optional[dict] = None,
        block_cache: Optional[set] = None,
    ) -> bool:
        if self.block.chain_digest != trusted_chain_digest:
            return False
        if not _check_block(self.block, block_cache):
            return False
        return self.multi.verify(self.block.tree_root, node_cache)


def _check_block(block: BlockWitness, block_cache: Optional[set]) -> bool:
    """Recompute a block's digest + chain link (memoized per witness).

    Imports locally to avoid a module cycle with the ledger, which
    owns the block-digest recipe.
    """
    from repro.core.ledger import block_digest_of, chain_digest_of

    if block_cache is not None and block.chain_digest in block_cache:
        return True
    digest = block_digest_of(
        height=block.height,
        previous=block.previous_chain_digest,
        tree_root=block.tree_root,
        writes_digest=block.writes_digest,
        statements_digest=block.statements_digest,
    )
    recomputed_chain = chain_digest_of(
        block.previous_chain_digest, digest
    )
    if recomputed_chain != block.chain_digest:
        return False
    if block_cache is not None:
        block_cache.add(block.chain_digest)
    return True
