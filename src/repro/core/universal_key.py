"""Universal keys.

"The system maps each cell to a universal key consisting of the column
id, primary key, timestamp, and the hash of its value" (Section 5).
The byte encoding below is order-preserving on
``(column, primary key, timestamp)`` so that prefix ranges enumerate a
cell's versions in commit order, and self-delimiting so it can be
decoded back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.crypto.hashing import Digest, hash_bytes

_SEP = b"\x00"
_ESCAPED_SEP = b"\x00\xff"


def _escape(part: bytes) -> bytes:
    """Escape NUL bytes so the separator stays unambiguous."""
    return part.replace(b"\x00", _ESCAPED_SEP)


def _unescape(part: bytes) -> bytes:
    return part.replace(_ESCAPED_SEP, b"\x00")


@dataclass(frozen=True, order=True)
class UniversalKey:
    """Address of one cell version."""

    column: str
    primary_key: bytes
    timestamp: int
    value_hash: Digest

    def encode(self) -> bytes:
        """Order-preserving byte encoding (memoized per instance).

        Layout: ``column \\x00\\x00 pk \\x00\\x00 ts(8B) hash(8B prefix)``
        with NULs inside components escaped.  Two consecutive NULs
        cannot appear inside an escaped component, so the encoding is
        unambiguous.
        """
        cached = self.__dict__.get("_encoded")
        if cached is None:
            cached = (
                _escape(self.column.encode("utf-8"))
                + _SEP + _SEP
                + _escape(self.primary_key)
                + _SEP + _SEP
                + self.timestamp.to_bytes(8, "big")
                + self.value_hash[:8]
            )
            object.__setattr__(self, "_encoded", cached)
        return cached

    @classmethod
    def decode(cls, data: bytes) -> "UniversalKey":
        """Inverse of :meth:`encode` (value hash truncated to 8 bytes
        is restored zero-padded; use only for display/routing)."""
        first = data.index(_SEP + _SEP)
        rest = data[first + 2:]
        # Find the component separator that is not part of an escape.
        second = _find_separator(rest)
        column = _unescape(data[:first]).decode("utf-8")
        primary_key = _unescape(rest[:second])
        tail = rest[second + 2:]
        timestamp = int.from_bytes(tail[:8], "big")
        value_hash = Digest(tail[8:16] + b"\x00" * 24)
        return cls(column, primary_key, timestamp, value_hash)

    @classmethod
    def for_cell(
        cls, column: str, primary_key: bytes, timestamp: int, value: bytes
    ) -> "UniversalKey":
        """Build the key for a concrete cell value."""
        return cls(
            column=column,
            primary_key=primary_key,
            timestamp=timestamp,
            value_hash=hash_bytes(value),
        )

    @staticmethod
    def prefix(column: str, primary_key: bytes) -> Tuple[bytes, bytes]:
        """(low, high) bounds enumerating every version of a cell."""
        base = (
            _escape(column.encode("utf-8"))
            + _SEP + _SEP
            + _escape(primary_key)
            + _SEP + _SEP
        )
        return base, base + b"\xff" * 16


def _find_separator(data: bytes) -> int:
    """Index of the first component separator (``\\x00\\x00``) in
    ``data``, skipping escaped NULs (``\\x00\\xff``)."""
    i = 0
    while True:
        i = data.index(_SEP, i)
        if data[i:i + 2] == _SEP + _SEP:
            return i
        i += 2  # skip the escape pair
