"""Table schemas and the typed value codec.

Spitz "supports both SQL and a self-defined JSON schema" (Section 5.1).
A table schema names typed columns and a primary key; rows are
decomposed into one cell per column (the virtual cell store model),
each addressed by a universal key and recorded in the ledger under a
stable *logical key* ``t\\x00table\\x00column\\x00pk``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import SchemaError

#: Supported column types.
COLUMN_TYPES = ("int", "float", "str", "bool", "bytes", "json")

#: Logical-key namespaces (keep KV, table and document keys disjoint).
KV_PREFIX = b"k\x00"
TABLE_PREFIX = b"t\x00"
DOC_PREFIX = b"d\x00"

#: Implicit per-row presence column (1 = live, deletes remove the
#: ledger entries; history stays in older block instances).
ROW_COLUMN = "_row"


@dataclass(frozen=True)
class Column:
    """One typed column."""

    name: str
    type: str

    def __post_init__(self) -> None:
        if self.type not in COLUMN_TYPES:
            raise SchemaError(
                f"unknown column type {self.type!r}; "
                f"expected one of {COLUMN_TYPES}"
            )
        if not self.name or self.name.startswith("_"):
            raise SchemaError(
                f"invalid column name {self.name!r} "
                "(must be non-empty and not start with '_')"
            )


@dataclass(frozen=True)
class TableSchema:
    """A table: named, typed columns plus a primary key column."""

    name: str
    columns: Tuple[Column, ...]
    primary_key: str

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column in table {self.name!r}")
        if self.primary_key not in names:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of "
                f"table {self.name!r}"
            )

    @classmethod
    def make(
        cls,
        name: str,
        columns: Sequence[Tuple[str, str]],
        primary_key: str,
    ) -> "TableSchema":
        return cls(
            name=name,
            columns=tuple(Column(n, t) for n, t in columns),
            primary_key=primary_key,
        )

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    # -- row handling ------------------------------------------------------

    def validate_row(self, row: Dict[str, Any]) -> None:
        """Type-check a full row dict against the schema."""
        for column in self.columns:
            if column.name not in row:
                raise SchemaError(
                    f"row is missing column {column.name!r} of table "
                    f"{self.name!r}"
                )
            check_type(column, row[column.name])
        extras = set(row) - set(self.column_names())
        if extras:
            raise SchemaError(
                f"row has unknown columns {sorted(extras)} for table "
                f"{self.name!r}"
            )

    def pk_bytes(self, row_or_value: Any) -> bytes:
        """Encode a primary-key value into sortable bytes."""
        value = (
            row_or_value[self.primary_key]
            if isinstance(row_or_value, dict)
            else row_or_value
        )
        column = self.column(self.primary_key)
        check_type(column, value)
        return encode_pk(column.type, value)

    def cell_column(self, column_name: str) -> str:
        """Cell-store column id for one of this table's columns."""
        return f"{self.name}.{column_name}"

    def logical_key(self, column_name: str, pk: bytes) -> bytes:
        """Ledger key for (this table, column, primary key)."""
        return (
            TABLE_PREFIX
            + self.name.encode("utf-8")
            + b"\x00"
            + column_name.encode("utf-8")
            + b"\x00"
            + pk
        )

    def logical_prefix(self, column_name: str) -> Tuple[bytes, bytes]:
        """(low, high) ledger-key bounds covering one column."""
        base = (
            TABLE_PREFIX
            + self.name.encode("utf-8")
            + b"\x00"
            + column_name.encode("utf-8")
            + b"\x00"
        )
        return base, base + b"\xff" * 40


def check_type(column: Column, value: Any) -> None:
    """Raise :class:`SchemaError` unless ``value`` fits ``column``."""
    expected = {
        "int": int,
        "float": (int, float),
        "str": str,
        "bool": bool,
        "bytes": bytes,
        "json": (dict, list),
    }[column.type]
    if column.type == "int" and isinstance(value, bool):
        raise SchemaError(f"column {column.name!r}: bool is not int")
    if not isinstance(value, expected):
        raise SchemaError(
            f"column {column.name!r} expects {column.type}, got "
            f"{type(value).__name__}"
        )


def encode_value(type_name: str, value: Any) -> bytes:
    """Serialize a typed value for cell storage / the ledger."""
    if type_name == "int":
        return b"i" + str(value).encode("ascii")
    if type_name == "float":
        return b"f" + repr(float(value)).encode("ascii")
    if type_name == "str":
        return b"s" + value.encode("utf-8")
    if type_name == "bool":
        return b"b1" if value else b"b0"
    if type_name == "bytes":
        return b"y" + value
    if type_name == "json":
        return b"j" + json.dumps(
            value, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    raise SchemaError(f"unknown type {type_name!r}")


def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value` (self-describing tag byte)."""
    tag, payload = data[:1], data[1:]
    if tag == b"i":
        return int(payload)
    if tag == b"f":
        return float(payload)
    if tag == b"s":
        return payload.decode("utf-8")
    if tag == b"b":
        return payload == b"1"
    if tag == b"y":
        return payload
    if tag == b"j":
        return json.loads(payload.decode("utf-8"))
    raise SchemaError(f"cannot decode value with tag {tag!r}")


def encode_pk(type_name: str, value: Any) -> bytes:
    """Order-preserving primary-key encoding.

    Integers are offset-shifted into unsigned 8-byte big-endian so
    byte order equals numeric order (range scans over the B+-tree and
    the ledger rely on this).
    """
    if type_name == "int":
        return (value + 2**63).to_bytes(8, "big")
    if type_name == "str":
        return value.encode("utf-8")
    if type_name == "bytes":
        return value
    raise SchemaError(
        f"type {type_name!r} cannot be a primary key "
        "(use int, str or bytes)"
    )


def decode_pk(type_name: str, data: bytes) -> Any:
    if type_name == "int":
        return int.from_bytes(data, "big") - 2**63
    if type_name == "str":
        return data.decode("utf-8")
    if type_name == "bytes":
        return data
    raise SchemaError(f"type {type_name!r} cannot be a primary key")
