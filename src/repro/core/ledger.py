"""The Spitz ledger.

"This structure consists of a sequence of hashed blocks.  Each block
tracks the modification of the records, query statements, metadata and
the root node of the indexes on the entire dataset" (Section 5,
*Ledger*).  Per Section 6.1, the ledger index is a SIRI instance —
here a POS-tree — and "each block in the ledger stores a historical
index instance, naturally composing a version of the ledger, and the
nodes between instances can be shared".

The crucial property: the ledger index is *unified* — the same
traversal answers the query and yields the proof — which drives every
Spitz-vs-baseline gap in Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.crypto.hashing import Digest, EMPTY_DIGEST, hash_many, hash_value
from repro.crypto.merkle import HashChain, _node_hash
from repro.errors import CommitNotFoundError
from repro.forkbase.chunk_store import ChunkStore
from repro.indexes.pos_tree import PosTree
from repro.indexes.siri import DELETE
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.core.proofs import (
    BlockWitness,
    LedgerMultiProof,
    LedgerProof,
    LedgerRangeProof,
)


def block_digest_of(
    height: int,
    previous: Digest,
    tree_root: Digest,
    writes_digest: Digest,
    statements_digest: Digest,
) -> Digest:
    """Digest of a block header (the chain links these)."""
    return hash_value(
        (
            "spitz-block",
            height,
            bytes(previous),
            bytes(tree_root),
            bytes(writes_digest),
            bytes(statements_digest),
        )
    )


def chain_digest_of(previous: Digest, block_digest: Digest) -> Digest:
    """Chain link function (shared with :class:`HashChain`)."""
    return _node_hash(previous, block_digest)


@dataclass(frozen=True)
class Block:
    """One sealed ledger block."""

    height: int
    previous_chain_digest: Digest
    tree_root: Digest
    writes_digest: Digest
    statements_digest: Digest
    chain_digest: Digest
    write_count: int

    def witness(self) -> BlockWitness:
        return BlockWitness(
            height=self.height,
            previous_chain_digest=self.previous_chain_digest,
            tree_root=self.tree_root,
            writes_digest=self.writes_digest,
            statements_digest=self.statements_digest,
            chain_digest=self.chain_digest,
        )


@dataclass(frozen=True)
class LedgerDigest:
    """What a client pins after a verified interaction."""

    height: int
    chain_digest: Digest
    tree_root: Digest


class SpitzLedger:
    """Hash-chained blocks, each embedding a POS-tree index instance."""

    def __init__(
        self,
        chunks: Optional[ChunkStore] = None,
        mask_bits: int = 3,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.chunks = chunks if chunks is not None else ChunkStore()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._c_blocks_sealed = self.metrics.counter("ledger.blocks_sealed")
        self._c_writes_sealed = self.metrics.counter("ledger.writes_sealed")
        self._c_proofs_served = self.metrics.counter("ledger.proofs_served")
        self._h_proof_bytes = self.metrics.histogram("ledger.proof_bytes")
        self._tree = PosTree.empty(self.chunks, mask_bits)
        self._chain = HashChain()
        self._blocks: List[Block] = []
        # Cached per-block trees for temporal queries (handles only —
        # nodes are shared in the chunk store, so this is cheap).
        self._trees: List[PosTree] = []
        # Retained statement lists (the block header commits to their
        # digest; keeping the plaintext enables provenance queries and
        # stays auditable via statements_digest).
        self._statements: List[Tuple[str, ...]] = []

    # -- writes ------------------------------------------------------------

    def append_block(
        self,
        writes: Mapping[bytes, object],
        statements: Sequence[str] = (),
    ) -> Block:
        """Seal ``writes`` (values or DELETE) into a new block.

        Returns the block; the new index instance shares all unchanged
        nodes with the previous block's instance.
        """
        with self.metrics.tracer.stage("ledger.append"):
            return self._append_block(writes, statements)

    def _append_block(
        self,
        writes: Mapping[bytes, object],
        statements: Sequence[str] = (),
    ) -> Block:
        self._tree = self._tree.apply(writes)
        height = len(self._blocks)
        previous = self._chain.head
        writes_digest = hash_many(
            part
            for key in sorted(writes)
            for part in (
                key,
                b"\x00" if writes[key] is DELETE else writes[key],
            )
        )
        statements_digest = hash_value(tuple(statements))
        digest = block_digest_of(
            height=height,
            previous=previous,
            tree_root=self._tree.root,
            writes_digest=writes_digest,
            statements_digest=statements_digest,
        )
        entry = self._chain.append(digest)
        block = Block(
            height=height,
            previous_chain_digest=previous,
            tree_root=self._tree.root,
            writes_digest=writes_digest,
            statements_digest=statements_digest,
            chain_digest=entry.chain_digest,
            write_count=len(writes),
        )
        self._blocks.append(block)
        self._trees.append(self._tree)
        self._statements.append(tuple(statements))
        self._c_blocks_sealed.inc()
        self._c_writes_sealed.inc(len(writes))
        return block

    # -- reads -------------------------------------------------------------

    @property
    def height(self) -> int:
        return len(self._blocks)

    @property
    def tree(self) -> PosTree:
        return self._tree

    def digest(self) -> LedgerDigest:
        """Current head digest (what clients save; Section 5.3)."""
        return LedgerDigest(
            height=len(self._blocks),
            chain_digest=self._chain.head,
            tree_root=self._tree.root,
        )

    def block(self, height: int) -> Block:
        if not 0 <= height < len(self._blocks):
            raise CommitNotFoundError(f"block #{height}")
        return self._blocks[height]

    def latest_block(self) -> Optional[Block]:
        return self._blocks[-1] if self._blocks else None

    def get(self, key: bytes) -> Optional[bytes]:
        """Unverified point read from the latest index instance."""
        return self._tree.get(key)

    def get_with_proof(
        self, key: bytes
    ) -> Tuple[Optional[bytes], LedgerProof]:
        """Point read plus proof in one traversal (the unified index)."""
        with self.metrics.tracer.stage_in_trace("ledger.prove"):
            block = self._require_block()
            value, siri = self._tree.get_with_proof(key)
            proof = LedgerProof(siri=siri, block=block.witness())
        self._c_proofs_served.inc()
        self._h_proof_bytes.observe(proof.size_bytes)
        return value, proof

    def get_many_with_proof(
        self, keys: Sequence[bytes]
    ) -> Tuple[List[Optional[bytes]], LedgerMultiProof]:
        """Batch point read plus one multiproof binding the block once.

        K point proofs would each carry the same
        :class:`~repro.core.proofs.BlockWitness` and re-ship the index's
        shared upper nodes; the multiproof dedups both.
        """
        with self.metrics.tracer.stage_in_trace("ledger.prove"):
            block = self._require_block()
            values, multi = self._tree.get_many_with_proof(keys)
            proof = LedgerMultiProof(multi=multi, block=block.witness())
        self._c_proofs_served.inc()
        self._h_proof_bytes.observe(proof.size_bytes)
        return values, proof

    def scan(self, low: bytes, high: bytes) -> List[Tuple[bytes, bytes]]:
        return self._tree.scan(low, high)

    def scan_with_proof(
        self, low: bytes, high: bytes
    ) -> Tuple[List[Tuple[bytes, bytes]], LedgerRangeProof]:
        """Range scan plus one covering proof (Section 6.2.2)."""
        with self.metrics.tracer.stage_in_trace("ledger.prove"):
            block = self._require_block()
            entries, range_proof = self._tree.scan_with_proof(low, high)
            proof = LedgerRangeProof(
                range_proof=range_proof, block=block.witness()
            )
        self._c_proofs_served.inc()
        self._h_proof_bytes.observe(proof.size_bytes)
        return entries, proof

    def _require_block(self) -> Block:
        if not self._blocks:
            raise CommitNotFoundError("<empty ledger>")
        return self._blocks[-1]

    # -- temporal reads ------------------------------------------------------

    def tree_at(self, height: int) -> PosTree:
        """The index instance sealed by block ``height`` (0-based)."""
        if not 0 <= height < len(self._trees):
            raise CommitNotFoundError(f"block #{height}")
        return self._trees[height]

    def get_at(self, key: bytes, height: int) -> Optional[bytes]:
        """Historical point read as of block ``height``."""
        return self.tree_at(height).get(key)

    def get_at_with_proof(
        self, key: bytes, height: int
    ) -> Tuple[Optional[bytes], LedgerProof]:
        """Historical verified read: proof against block ``height``."""
        with self.metrics.tracer.stage_in_trace("ledger.prove"):
            block = self.block(height)
            value, siri = self.tree_at(height).get_with_proof(key)
            proof = LedgerProof(siri=siri, block=block.witness())
        self._c_proofs_served.inc()
        self._h_proof_bytes.observe(proof.size_bytes)
        return value, proof

    def key_history(self, key: bytes) -> List[Tuple[int, Optional[bytes]]]:
        """(height, value) whenever ``key``'s value changed.

        Walks the per-block index instances; deletions appear as None.
        A key that never existed has no changes — the result is empty,
        not a phantom ``(0, None)`` entry.
        """
        changes: List[Tuple[int, Optional[bytes]]] = []
        for height, tree in enumerate(self._trees):
            value = tree.get(key)
            if changes:
                if value != changes[-1][1]:
                    changes.append((height, value))
            elif value is not None:
                changes.append((height, value))
        return changes

    # -- audit ---------------------------------------------------------------

    def statements(self, height: int) -> Tuple[str, ...]:
        """The query statements sealed in block ``height``.

        The returned plaintext is checkable against the block header:
        ``hash_value(statements)`` must equal ``statements_digest``.
        """
        if not 0 <= height < len(self._statements):
            raise CommitNotFoundError(f"block #{height}")
        return self._statements[height]

    def extension_proof(self, from_height: int) -> List[BlockWitness]:
        """Witnesses for every block after ``from_height``.

        A client holding the trusted digest of block ``from_height - 1``
        verifies, link by link, that the current digest *extends* its
        trusted history (see
        :meth:`~repro.core.verifier.ClientVerifier.advance`).  This is
        the chain analogue of a Merkle consistency proof: without it a
        client updating its digest has to take non-reordering on
        faith.
        """
        if not 0 <= from_height <= len(self._blocks):
            raise CommitNotFoundError(f"block #{from_height}")
        return [
            block.witness() for block in self._blocks[from_height:]
        ]

    def verify_chain(self) -> bool:
        """Recompute every block digest and chain link from headers.

        An auditor's full-history check: any rewritten header or
        reordered block breaks a link.
        """
        running = EMPTY_DIGEST
        for block in self._blocks:
            if block.previous_chain_digest != running:
                return False
            digest = block_digest_of(
                height=block.height,
                previous=block.previous_chain_digest,
                tree_root=block.tree_root,
                writes_digest=block.writes_digest,
                statements_digest=block.statements_digest,
            )
            running = chain_digest_of(running, digest)
            if block.chain_digest != running:
                return False
        return running == self._chain.head

    def storage_report(self) -> Dict[str, float]:
        stats = self.chunks.stats
        return {
            "blocks": len(self._blocks),
            "logical_bytes": stats.logical_bytes,
            "physical_bytes": stats.physical_bytes,
            "dedup_ratio": stats.dedup_ratio,
        }
