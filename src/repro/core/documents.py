"""The self-defined JSON schema interface (Section 5.1).

"Spitz supports both SQL and a self-defined JSON schema."  This module
is the JSON side: schemaless *collections* of documents, each document
a JSON object addressed by a string id.  Documents are stored as
ledger entries (so reads are verifiable and history is free) and their
top-level scalar fields are indexed in the inverted index for
`find()` queries.

A *schema* in the "self-defined" sense is an optional, per-collection
validator document::

    {"required": ["name"], "types": {"name": "str", "age": "int"}}

enforced at insert/replace time.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import QueryError, SchemaError
from repro.core.database import SpitzDatabase
from repro.core.proofs import LedgerProof
from repro.core.verifier import ClientVerifier

_TYPE_CHECKS = {
    "str": str,
    "int": int,
    "float": (int, float),
    "bool": bool,
    "list": list,
    "object": dict,
}


def _encode(document: Dict[str, Any]) -> bytes:
    return json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _decode(data: bytes) -> Dict[str, Any]:
    return json.loads(data.decode("utf-8"))


class Collection:
    """One named collection of JSON documents.

    Obtain instances from :meth:`DocumentStore.collection`.
    """

    def __init__(
        self,
        db: SpitzDatabase,
        name: str,
        schema: Optional[Dict[str, Any]] = None,
    ):
        if not name or "\x00" in name:
            raise SchemaError(f"invalid collection name {name!r}")
        self._db = db
        self.name = name
        self.schema = schema
        from repro.core.schema import DOC_PREFIX

        self._prefix = (
            DOC_PREFIX + name.encode("utf-8") + b"\x00"
        )

    # -- keys ----------------------------------------------------------------

    def _key(self, doc_id: str) -> bytes:
        if not doc_id:
            raise SchemaError("document id must be non-empty")
        return self._prefix + doc_id.encode("utf-8")

    def _index_column(self, field: str) -> str:
        return f"{self.name}#doc.{field}"

    # -- validation -------------------------------------------------------------

    def _validate(self, document: Dict[str, Any]) -> None:
        if not isinstance(document, dict):
            raise SchemaError("a document must be a JSON object")
        if self.schema is None:
            return
        for field in self.schema.get("required", []):
            if field not in document:
                raise SchemaError(
                    f"document is missing required field {field!r}"
                )
        for field, type_name in self.schema.get("types", {}).items():
            if field not in document:
                continue
            expected = _TYPE_CHECKS.get(type_name)
            if expected is None:
                raise SchemaError(f"unknown schema type {type_name!r}")
            value = document[field]
            if type_name in ("int", "float") and isinstance(value, bool):
                raise SchemaError(
                    f"field {field!r}: bool is not {type_name}"
                )
            if not isinstance(value, expected):
                raise SchemaError(
                    f"field {field!r} expects {type_name}, got "
                    f"{type(value).__name__}"
                )

    # -- writes --------------------------------------------------------------------

    def put(self, doc_id: str, document: Dict[str, Any]) -> None:
        """Insert or replace one document (one ledger block)."""
        self._validate(document)
        self._unindex(doc_id)
        self._db._commit(
            {self._key(doc_id): _encode(document)},
            statements=(f"DOC PUT {self.name}/{doc_id}",),
        )
        self._index(doc_id, document)

    def delete(self, doc_id: str) -> bool:
        """Remove a document (history stays in older blocks)."""
        if self.get(doc_id) is None:
            return False
        self._unindex(doc_id)
        from repro.indexes.siri import DELETE

        self._db._commit(
            {self._key(doc_id): DELETE},
            statements=(f"DOC DELETE {self.name}/{doc_id}",),
        )
        return True

    def _index(self, doc_id: str, document: Dict[str, Any]) -> None:
        token = doc_id.encode("utf-8")
        for field, value in document.items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float, str)
            ):
                continue
            self._db.inverted.add(self._index_column(field), value, token)

    def _unindex(self, doc_id: str) -> None:
        previous = self.get(doc_id)
        if previous is None:
            return
        token = doc_id.encode("utf-8")
        for field, value in previous.items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float, str)
            ):
                continue
            self._db.inverted.remove(
                self._index_column(field), value, token
            )

    # -- reads ----------------------------------------------------------------------

    def get(self, doc_id: str) -> Optional[Dict[str, Any]]:
        """Unverified read of one document."""
        raw = self._db.ledger.get(self._key(doc_id))
        return _decode(raw) if raw is not None else None

    def get_verified(
        self, doc_id: str
    ) -> Tuple[Optional[Dict[str, Any]], LedgerProof]:
        """Document plus its ledger proof."""
        self._db.flush_ledger()
        raw, proof = self._db.ledger.get_with_proof(self._key(doc_id))
        return (_decode(raw) if raw is not None else None), proof

    def ids(self) -> List[str]:
        """All document ids, sorted."""
        self._db.flush_ledger()
        entries = self._db.ledger.scan(
            self._prefix, self._prefix + b"\xff" * 64
        )
        return [
            key[len(self._prefix):].decode("utf-8") for key, _ in entries
        ]

    def find(
        self,
        field: str,
        value: Any = None,
        low: Any = None,
        high: Any = None,
    ) -> List[Tuple[str, Dict[str, Any]]]:
        """Documents whose indexed ``field`` equals ``value`` or lies
        in ``[low, high]``.  Returns (id, document) pairs."""
        column = self._index_column(field)
        if value is not None:
            tokens = self._db.inverted.lookup(column, value)
        elif low is not None and high is not None:
            tokens = self._db.inverted.range(column, low, high)
        else:
            raise QueryError("find() needs value= or low=/high=")
        results: List[Tuple[str, Dict[str, Any]]] = []
        for token in tokens:
            doc_id = token.decode("utf-8")
            document = self.get(doc_id)
            if document is not None:
                results.append((doc_id, document))
        return results

    def history(
        self, doc_id: str
    ) -> List[Tuple[int, Optional[Dict[str, Any]]]]:
        """(block height, document state) at every change."""
        self._db.flush_ledger()
        changes = self._db.ledger.key_history(self._key(doc_id))
        return [
            (height, _decode(raw) if raw is not None else None)
            for height, raw in changes
        ]

    def get_at_block(
        self, doc_id: str, height: int
    ) -> Optional[Dict[str, Any]]:
        """Historical document state as of block ``height``."""
        raw = self._db.ledger.get_at(self._key(doc_id), height)
        return _decode(raw) if raw is not None else None


class DocumentStore:
    """Facade: named collections over one Spitz database."""

    def __init__(self, db: Optional[SpitzDatabase] = None):
        self.db = db if db is not None else SpitzDatabase()
        self._collections: Dict[str, Collection] = {}

    def collection(
        self, name: str, schema: Optional[Dict[str, Any]] = None
    ) -> Collection:
        """Get or create a collection (idempotent; a schema passed on
        the first call sticks)."""
        existing = self._collections.get(name)
        if existing is not None:
            if schema is not None and existing.schema != schema:
                raise SchemaError(
                    f"collection {name!r} already exists with a "
                    "different schema"
                )
            return existing
        created = Collection(self.db, name, schema)
        self._collections[name] = created
        return created

    def collections(self) -> List[str]:
        return sorted(self._collections)

    def digest(self):
        return self.db.digest()

    def verifier(self) -> ClientVerifier:
        """A client verifier pre-trusted with the current digest."""
        verifier = ClientVerifier()
        verifier.trust(self.db.digest())
        return verifier
