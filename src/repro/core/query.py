"""Query conditions, plans and the planner.

Section 5.1's read path: point/range lookups go through the B+-tree or
the ledger's unified index; analytical predicates on non-key columns
go through the inverted indexes.  The planner here picks among those
access paths from the WHERE conjunction, mirroring that description.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import QueryError


class Op(enum.Enum):
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    BETWEEN = "between"


@dataclass(frozen=True)
class Condition:
    """One predicate: ``column op value`` (or BETWEEN low AND high)."""

    column: str
    op: Op
    value: Any
    high: Any = None  # BETWEEN upper bound

    def matches(self, row_value: Any) -> bool:
        if self.op is Op.EQ:
            return row_value == self.value
        if self.op is Op.NE:
            return row_value != self.value
        if self.op is Op.LT:
            return row_value < self.value
        if self.op is Op.LE:
            return row_value <= self.value
        if self.op is Op.GT:
            return row_value > self.value
        if self.op is Op.GE:
            return row_value >= self.value
        if self.op is Op.BETWEEN:
            return self.value <= row_value <= self.high
        raise QueryError(f"unknown operator {self.op}")


class AccessPath(enum.Enum):
    """How the executor will locate candidate rows."""

    PRIMARY_POINT = "primary_point"
    PRIMARY_RANGE = "primary_range"
    INVERTED_POINT = "inverted_point"
    INVERTED_RANGE = "inverted_range"
    FULL_SCAN = "full_scan"


@dataclass(frozen=True)
class Plan:
    """A chosen access path plus the residual predicates to filter."""

    path: AccessPath
    driver: Optional[Condition]
    residual: Tuple[Condition, ...]


def plan_query(
    conditions: Sequence[Condition], primary_key: str
) -> Plan:
    """Pick the cheapest access path for a conjunction of conditions.

    Priority order: primary-key equality, primary-key range,
    inverted-index equality, inverted-index range, full scan — i.e.
    prefer the B+-tree for key predicates and the inverted index for
    value predicates, per Section 5.1.
    """
    conditions = tuple(conditions)
    for condition in conditions:
        if condition.column == primary_key and condition.op is Op.EQ:
            return Plan(
                path=AccessPath.PRIMARY_POINT,
                driver=condition,
                residual=_without(conditions, condition),
            )
    for condition in conditions:
        if condition.column == primary_key and condition.op in (
            Op.LT, Op.LE, Op.GT, Op.GE, Op.BETWEEN,
        ):
            return Plan(
                path=AccessPath.PRIMARY_RANGE,
                driver=condition,
                residual=_residual_for_range(conditions, condition),
            )
    for condition in conditions:
        if condition.op is Op.EQ:
            return Plan(
                path=AccessPath.INVERTED_POINT,
                driver=condition,
                residual=_without(conditions, condition),
            )
    for condition in conditions:
        if condition.op in (Op.LT, Op.LE, Op.GT, Op.GE, Op.BETWEEN):
            return Plan(
                path=AccessPath.INVERTED_RANGE,
                driver=condition,
                residual=_residual_for_range(conditions, condition),
            )
    return Plan(path=AccessPath.FULL_SCAN, driver=None, residual=conditions)


def _residual_for_range(
    conditions: Tuple[Condition, ...], driver: Condition
) -> Tuple[Condition, ...]:
    """Residual filter for a range driver.

    The index range is inclusive, so strict drivers (``<``, ``>``)
    must also stay in the residual to reject boundary matches;
    inclusive drivers (``<=``, ``>=``, ``BETWEEN``) are fully covered
    by the range and are dropped.
    """
    if driver.op in (Op.LT, Op.GT):
        return conditions
    return _without(conditions, driver)


def _without(
    conditions: Tuple[Condition, ...], dropped: Condition
) -> Tuple[Condition, ...]:
    result: List[Condition] = []
    skipped = False
    for condition in conditions:
        if condition is dropped and not skipped:
            skipped = True
            continue
        result.append(condition)
    return tuple(result)


def range_bounds(condition: Condition) -> Tuple[Any, Any]:
    """(low, high) inclusive bounds implied by a range condition.

    Open-ended sides return None; strict bounds are handled by the
    residual filter (the driver over-fetches by at most the boundary
    value).
    """
    if condition.op is Op.BETWEEN:
        return condition.value, condition.high
    if condition.op in (Op.GT, Op.GE):
        return condition.value, None
    if condition.op in (Op.LT, Op.LE):
        return None, condition.value
    raise QueryError(f"{condition.op} is not a range operator")
