"""The request handler component and the request/response envelope.

"The request handler accepts query requests and returns the results
with the corresponding proofs" (Section 5).  Requests arrive from the
global message queue; each is a small typed envelope so the simulated
network layer (:mod:`repro.integration.simnet`) can serialize them.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import QueryError, SpitzError
from repro.core.database import SpitzDatabase
from repro.core.ledger import LedgerDigest
from repro.search.proofs import SearchPredicate


class RequestKind(enum.Enum):
    GET = "get"
    #: Batch point read: ``payload["keys"]`` is a list of keys; with
    #: ``verify=True`` the response carries one
    #: :class:`~repro.core.proofs.LedgerMultiProof` for all of them.
    MULTI_GET = "multi_get"
    PUT = "put"
    DELETE = "delete"
    SCAN = "scan"
    SQL = "sql"
    HISTORY = "history"
    DIGEST = "digest"
    #: Metrics snapshot of the shared storage layer — answerable by
    #: any processor node (they all share one registry).
    STATS = "stats"
    #: Secondary-index search: ``payload["column"]`` names a table
    #: cell column, ``payload["predicate"]`` is a
    #: :meth:`~repro.search.proofs.SearchPredicate.to_payload` dict;
    #: with ``verify=True`` the response carries a
    #: :class:`~repro.search.proofs.SearchProof` (membership *and*
    #: completeness, DESIGN.md §6i).
    SEARCH = "search"


@dataclass(frozen=True)
class Request:
    """One client request.

    ``verify=True`` asks for proofs alongside results (the paper's
    ``*-verify`` configurations).
    """

    kind: RequestKind
    payload: Dict[str, Any] = field(default_factory=dict)
    verify: bool = False


@dataclass(frozen=True)
class Response:
    """Result + optional proof + the ledger digest at answer time."""

    ok: bool
    result: Any = None
    proof: Any = None
    digest: Optional[LedgerDigest] = None
    error: Optional[str] = None
    #: True when the failure is transient and the request had no side
    #: effects (e.g. it was shed unprocessed after its deadline), so
    #: the client may safely resubmit.  See ClusterClient.
    retryable: bool = False


class RequestHandler:
    """Dispatches requests against one node's database."""

    def __init__(self, db: SpitzDatabase):
        self._db = db
        self._metrics = db.metrics
        self._c_total = self._metrics.counter("requests.total")
        self._c_errors = self._metrics.counter("requests.errors")
        self._c_unexpected = self._metrics.counter(
            "requests.unexpected_errors"
        )
        self._h_latency = self._metrics.histogram("request.latency_seconds")
        # Per-kind instruments, pre-bound once per kind: requests.kind.X
        # (total), .ok / .errors (outcomes) and a per-kind latency
        # histogram.  These are the series the SLO evaluator windows
        # over (DESIGN.md §6h), so they must exist per kind rather than
        # only in aggregate.
        self._kind_instruments = {
            kind: (
                self._metrics.counter(f"requests.kind.{kind.value}"),
                self._metrics.counter(f"requests.kind.{kind.value}.ok"),
                self._metrics.counter(f"requests.kind.{kind.value}.errors"),
                self._metrics.histogram(
                    f"request.kind.{kind.value}.latency_seconds"
                ),
            )
            for kind in RequestKind
        }
        self.handled = 0

    def handle(self, request: Request) -> Response:
        """Execute one request; *every* exception becomes an error
        response.

        Expected failures (:class:`SpitzError`) report their message;
        anything else — e.g. a malformed payload raising ``KeyError``
        — is converted too, so a bad request can never kill a
        processor node's serve loop or leave its client waiting on an
        envelope that will never complete.
        """
        self.handled += 1
        self._c_total.inc()
        c_kind, c_ok, c_kind_errors, h_kind = (
            self._kind_instruments[request.kind]
        )
        c_kind.inc()
        start = time.perf_counter()
        try:
            with self._metrics.tracer.stage("request.handle"):
                result, proof, digest = self._dispatch_with_digest(request)
        except SpitzError as error:
            self._c_errors.inc()
            c_kind_errors.inc()
            return Response(ok=False, error=str(error))
        except Exception as error:
            self._c_errors.inc()
            self._c_unexpected.inc()
            c_kind_errors.inc()
            return Response(
                ok=False,
                error=(
                    f"malformed or unprocessable request "
                    f"({type(error).__name__}: {error})"
                ),
            )
        finally:
            elapsed = time.perf_counter() - start
            self._h_latency.observe(elapsed)
            h_kind.observe(elapsed)
        c_ok.inc()
        return Response(ok=True, result=result, proof=proof, digest=digest)

    def _dispatch_with_digest(self, request: Request):
        """Dispatch; for verified requests also capture the digest.

        Proof and digest are captured under the database's commit lock
        so they describe the *same* ledger state.  Without the lock a
        commit from another node can land between proof generation and
        digest capture, pairing an old-block proof with a new-block
        digest — the client's verification then fails spuriously even
        though nothing was tampered with.
        """
        if not request.verify:
            result, proof = self._dispatch(request)
            return result, proof, None
        lock = getattr(self._db, "commit_lock", None)
        if lock is None:
            lock = self._db.txn_manager.commit_lock
        with lock:
            result, proof = self._dispatch(request)
            # Sharded proofs embed the digest-of-digests they were
            # built against (per-shard leaves are captured atomically
            # inside the facade); re-deriving it here could pair the
            # proof with a root that moved under a concurrent write.
            digest = getattr(proof, "digest", None)
            if digest is None:
                digest = self._db.digest()
        return result, proof, digest

    def _dispatch(self, request: Request):
        payload = request.payload
        kind = request.kind
        if kind is RequestKind.GET:
            if request.verify:
                value, proof = self._db.get_verified(payload["key"])
                return value, proof
            return self._db.get(payload["key"]), None
        if kind is RequestKind.MULTI_GET:
            keys = list(payload["keys"])
            if request.verify:
                values, proof = self._db.get_many_verified(keys)
                return values, proof
            return self._db.get_many(keys), None
        if kind is RequestKind.PUT:
            if request.verify:
                block, proof = self._db.put_with_proof(
                    payload["key"], payload["value"]
                )
                return block.height, proof
            block = self._db.put(payload["key"], payload["value"])
            return block.height, None
        if kind is RequestKind.DELETE:
            block = self._db.delete(payload["key"])
            return block.height, None
        if kind is RequestKind.SCAN:
            if request.verify:
                entries, proof = self._db.scan_verified(
                    payload["low"], payload["high"]
                )
                return entries, proof
            return self._db.scan(payload["low"], payload["high"]), None
        if kind is RequestKind.SEARCH:
            column = payload["column"]
            predicate = SearchPredicate.from_payload(payload["predicate"])
            if request.verify:
                ukeys, proof = self._db.search_verified(column, predicate)
                return ukeys, proof
            return self._db.search(column, predicate), None
        if kind is RequestKind.SQL:
            return self._db.sql(payload["text"]), None
        if kind is RequestKind.HISTORY:
            return self._db.history(payload["key"]), None
        if kind is RequestKind.DIGEST:
            return self._db.digest(), None
        if kind is RequestKind.STATS:
            snapshot = self._db.metrics_snapshot()
            if payload.get("traces"):
                # Opt-in extension: the flight recorder's retained
                # traces and critical-path attribution ride along with
                # the metrics snapshot.  Opt-in keeps the default STATS
                # payload shape stable for existing consumers.
                snapshot = dict(snapshot)
                snapshot["traces"] = self._db.metrics.flight.snapshot()
            return snapshot, None
        raise QueryError(f"unsupported request kind {kind}")
