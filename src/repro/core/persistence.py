"""Snapshot persistence for a Spitz database.

The paper's prototype is in-memory; so is this reproduction.  For the
examples and the CLI to be usable across invocations, this module
provides *snapshot* persistence: the whole database object graph is
serialized to a file with an integrity header, and reloads are checked
against both the header digest and a full chain audit.

Caveats (documented, deliberate):
- a snapshot is a point-in-time copy, not a write-ahead log; for
  crash consistency *between* saves, layer the WAL on top
  (:mod:`repro.durability` — it reuses this format for checkpoints);
- the format is Python-pickle based and not cross-version stable —
  it is a convenience layer, not an interchange format.
"""

from __future__ import annotations

import os
import pickle
import sys
from pathlib import Path
from typing import Union

from repro.crypto.hashing import hash_bytes
from repro.errors import StorageError, TamperDetectedError
from repro.core.database import SpitzDatabase

_MAGIC = b"SPITZDB1"


def save_database(db: SpitzDatabase, path: Union[str, Path]) -> int:
    """Write a snapshot of ``db``; returns the snapshot size in bytes.

    Pending ledger writes are flushed first so the snapshot is a
    sealed, verifiable state.  The write is atomic: the blob lands in
    a temp file that is fsynced and then renamed over ``path``, so a
    crash mid-save leaves the previous snapshot untouched rather than
    a half-written one.
    """
    db.flush_ledger()
    # Deep object graphs (B+-tree leaf chains) need headroom beyond
    # the default recursion limit.
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, 100_000))
    try:
        payload = pickle.dumps(db, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        sys.setrecursionlimit(limit)
    digest = hash_bytes(payload)
    blob = _MAGIC + bytes(digest) + payload
    path = Path(path)
    temp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with open(temp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
    finally:
        if temp.exists():
            temp.unlink()
    return len(blob)


def load_database(path: Union[str, Path]) -> SpitzDatabase:
    """Load a snapshot, checking the header digest and the chain.

    Raises :class:`TamperDetectedError` when the file bytes do not
    match their recorded digest or the restored ledger fails its
    chain audit — a snapshot modified at rest is detected, not
    silently loaded.
    """
    blob = Path(path).read_bytes()
    if not blob.startswith(_MAGIC):
        raise StorageError(f"{path} is not a Spitz snapshot")
    digest, payload = blob[8:40], blob[40:]
    if bytes(hash_bytes(payload)) != digest:
        raise TamperDetectedError(
            f"snapshot {path} does not match its recorded digest"
        )
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, 100_000))
    try:
        db = pickle.loads(payload)
    finally:
        sys.setrecursionlimit(limit)
    if not isinstance(db, SpitzDatabase):
        raise StorageError(f"snapshot {path} does not contain a database")
    if not db.verify_chain():
        raise TamperDetectedError(
            f"snapshot {path} restored a ledger that fails its audit"
        )
    return db
