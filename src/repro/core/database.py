"""SpitzDatabase: the public facade.

Wires the paper's two layers together (Section 5, Figure 5):

- **storage layer** — one shared chunk store holding the deduplicated
  cell values *and* the ledger's POS-tree nodes; the virtual cell
  store; the B+-tree primary access path; inverted indexes for
  analytics;
- **control layer** — a transaction manager (MVCC + pluggable
  certifier) whose committed write sets are folded into the storage
  layer and sealed into ledger blocks (the auditor's job).

Two write paths exist, both funnelling through :meth:`_commit`:

1. *auto-commit* operations (``put``/``insert``/...) — each call is
   one block, matching the paper's single-threaded evaluation;
2. *transactional sessions* (:meth:`transaction`) — buffered writes
   certified by the concurrency-control layer, sealed as one block at
   commit.

``ledger_only=True`` wakes up only the auditor/ledger half, which is
how Spitz serves as the ledger database of the non-intrusive design
(Section 5.1: "the system can be applied into a non-intrusive design
... by solely waking up the auditor in the processor").
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.crypto.hashing import Digest
from repro.errors import QueryError, SchemaError
from repro.forkbase.chunk_store import ChunkStore
from repro.obs.metrics import MetricsRegistry
from repro.indexes.bplus import BPlusTree
from repro.indexes.inverted import InvertedIndex
from repro.indexes.siri import DELETE
from repro.txn.manager import (
    IsolationLevel,
    Transaction,
    TransactionManager,
)
from repro.txn.mvcc import Version
from repro.core.cell_store import Cell, CellStore
from repro.core.ledger import Block, LedgerDigest, SpitzLedger
from repro.core.proofs import (
    LedgerMultiProof,
    LedgerProof,
    LedgerRangeProof,
)
from repro.core.query import (
    AccessPath,
    Condition,
    Op,
    Plan,
    plan_query,
    range_bounds,
)
from repro.core.schema import (
    DOC_PREFIX,
    KV_PREFIX,
    ROW_COLUMN,
    TABLE_PREFIX,
    TableSchema,
    decode_value,
    encode_pk,
    encode_value,
)
from repro.core import sql as sql_module
from repro.core.universal_key import UniversalKey
from repro.search.committed import SEARCH_ROOT_KEY, CommittedSearchIndex
from repro.search.proofs import (
    SearchPredicate,
    SearchProof,
    build_search_proof,
    evaluate_on_inverted,
)

_KV_COLUMN = "default"


class SpitzDatabase:
    """A single-node Spitz instance (see module docstring)."""

    def __init__(
        self,
        mask_bits: int = 3,
        ledger_only: bool = False,
        certifier: Optional[object] = None,
        block_batch: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        oracle: Optional[object] = None,
        indexed_columns: Optional[Sequence[str]] = None,
    ):
        if block_batch < 1:
            raise ValueError("block_batch must be positive")
        # One registry serves the whole instance (storage + control
        # layers share it; the cluster and the WAL attach to it too).
        # Pass ``repro.obs.NULL_REGISTRY`` to run uninstrumented.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_commits = self.metrics.counter("db.commits")
        self._c_writes_folded = self.metrics.counter("db.writes_folded")
        self.chunks = ChunkStore(metrics=self.metrics)
        self.ledger = SpitzLedger(
            self.chunks, mask_bits, metrics=self.metrics
        )
        self.ledger_only = ledger_only
        self.cells = CellStore(self.chunks)
        self.primary = BPlusTree()
        self.inverted = InvertedIndex()
        # ``oracle`` lets a shard allocate from its own HLC (see
        # repro.shard) instead of the default central TimestampOracle.
        self.txn_manager = TransactionManager(
            oracle=oracle, certifier=certifier
        )
        self.oracle = self.txn_manager.oracle
        self.txn_manager.add_commit_listener(self._on_txn_commit)
        self._tables: Dict[str, TableSchema] = {}
        # Section 5.3's deferred scheme on the write side: with
        # ``block_batch > 1``, cells and indexes update immediately but
        # ledger writes accumulate and seal as one block per batch
        # (flushed automatically before any proof/digest/temporal
        # operation, so verification always sees a sealed state).
        self.block_batch = block_batch
        self._pending_writes: Dict[bytes, object] = {}
        self._pending_statements: list = []
        # Commit hooks observe every ledger-affecting operation after
        # it is applied — the durability layer's WAL attaches here.
        # Deliberately excluded from pickling (see __getstate__): a
        # snapshot captures state, not live observers.
        self._commit_hooks: List[Callable[[str, Dict[str, object]], None]] = []
        # Verifiable search plane (DESIGN.md §6i): with indexed columns
        # configured, every sealed block also commits the per-column
        # search manifest under a reserved ledger key, making secondary-
        # index answers provable.  ``None`` = unverified search only.
        self._search: Optional[CommittedSearchIndex] = None
        if indexed_columns:
            self._search = CommittedSearchIndex(
                self.chunks, indexed_columns
            )
        self._c_search_queries = self.metrics.counter("search.queries")
        self._c_search_matches = self.metrics.counter("search.matches")
        self._c_search_proof_bytes = self.metrics.counter(
            "search.proof_bytes"
        )
        self._c_search_maintained = self.metrics.counter(
            "search.maintained_postings"
        )

    # ------------------------------------------------------------------
    # commit hooks (durability / replication observers)
    # ------------------------------------------------------------------

    def add_commit_hook(
        self, hook: Callable[[str, Dict[str, object]], None]
    ) -> None:
        """Register ``hook(kind, payload)`` to run after each commit.

        Kinds: ``"commit"`` with ``{"writes", "statements",
        "timestamp"}`` (writes map logical keys to value bytes or the
        ``DELETE`` sentinel) and ``"create_table"`` with ``{"name",
        "columns", "primary_key"}``.  Hooks run inside the commit lock,
        after the operation is fully applied.
        """
        self._commit_hooks.append(hook)

    def remove_commit_hook(
        self, hook: Callable[[str, Dict[str, object]], None]
    ) -> None:
        if hook in self._commit_hooks:
            self._commit_hooks.remove(hook)

    def _notify_commit_hooks(
        self, kind: str, payload: Dict[str, object]
    ) -> None:
        for hook in list(self._commit_hooks):
            hook(kind, payload)

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_commit_hooks"] = []  # observers are not state
        return state

    # ------------------------------------------------------------------
    # central commit pipeline
    # ------------------------------------------------------------------

    def _commit(
        self,
        writes: Mapping[bytes, object],
        statements: Tuple[str, ...] = (),
        timestamp: Optional[int] = None,
        install_mvcc: bool = True,
    ) -> Block:
        """Fold a write set into cells/indexes and seal a ledger block.

        ``writes`` maps logical keys to value bytes or DELETE.  This is
        the paper's write path: (2) auditor updates the ledger, (3)
        processor traverses the index and writes the cell store.
        """
        # Serialize with transactional commits so MVCC installs stay in
        # timestamp order (the lock is re-entrant: the commit-listener
        # path already holds it).  The stage includes the lock wait:
        # commit-lock contention *is* part of a traced request's
        # critical path.
        with self.metrics.tracer.stage("txn.commit"):
            with self.txn_manager.commit_lock:
                return self._commit_locked(
                    writes, statements, timestamp, install_mvcc
                )

    def _commit_locked(
        self,
        writes: Mapping[bytes, object],
        statements: Tuple[str, ...],
        timestamp: Optional[int],
        install_mvcc: bool,
    ) -> Block:
        timestamp = (
            timestamp if timestamp is not None
            else self.oracle.next_timestamp()
        )
        self._c_commits.inc()
        self._c_writes_folded.inc(len(writes))
        if not self.ledger_only:
            for logical_key, value in writes.items():
                column, primary_key = _parse_logical_key(logical_key)
                if value is DELETE:
                    self._unindex(logical_key, column, primary_key)
                    if logical_key in self.primary:
                        self.primary.delete(logical_key)
                    continue
                self._unindex(logical_key, column, primary_key)
                ukey = self.cells.put(
                    column, primary_key, timestamp, value
                )
                self.primary.insert(logical_key, ukey.encode())
                self._index(column, value, ukey)
            if install_mvcc:
                mvcc_writes = {
                    key: (Version.TOMBSTONE if value is DELETE else value)
                    for key, value in writes.items()
                }
                self.txn_manager.store.install(
                    mvcc_writes, timestamp, txn_id=0
                )
        if self.block_batch == 1 and not self._pending_writes:
            block = self._append_ledger_block(writes, statements)
        else:
            self._pending_writes.update(writes)
            self._pending_statements.extend(statements)
            if len(self._pending_writes) >= self.block_batch:
                block = self.flush_ledger()
            else:
                block = self.ledger.latest_block()
        self._notify_commit_hooks(
            "commit",
            {
                "writes": dict(writes),
                "statements": tuple(statements),
                "timestamp": timestamp,
            },
        )
        return block

    def flush_ledger(self) -> Block:
        """Seal pending ledger writes into a block (no-op-safe)."""
        if self._pending_writes:
            block = self._append_ledger_block(
                self._pending_writes, tuple(self._pending_statements)
            )
            self._pending_writes = {}
            self._pending_statements = []
            return block
        return self.ledger.latest_block()

    def _append_ledger_block(
        self, writes: Mapping[bytes, object], statements=()
    ) -> Block:
        """Seal one block, folding the committed search manifest in.

        The reserved search key is injected here — at seal time only —
        so it never flows through the cell store, the MVCC store or the
        commit hooks (durability replay re-derives it from the same
        writes), while the block's tree root (and hence the chain
        digest clients pin) commits to every indexed column's postings.
        """
        if self._search is None:
            return self.ledger.append_block(writes, statements)
        with self.metrics.tracer.stage("search.maintain"):
            self._c_search_maintained.inc(self._search.pending_changes)
            manifest = self._search.seal(self.inverted)
        sealed = dict(writes)
        sealed[SEARCH_ROOT_KEY] = manifest
        return self.ledger.append_block(sealed, statements)

    def _on_txn_commit(self, txn: Transaction) -> None:
        if not txn.write_buffer:
            return
        writes = {
            key: (
                DELETE
                if isinstance(value, str) and value == Version.TOMBSTONE
                else value
            )
            for key, value in txn.write_buffer.items()
        }
        self._commit(
            writes,
            statements=(f"txn:{txn.txn_id}",),
            timestamp=txn.commit_ts,
            install_mvcc=False,  # the manager already installed them
        )

    def _index(self, column: str, value: bytes, ukey: UniversalKey) -> None:
        """Maintain the inverted index for typed table cells."""
        if "." not in column:
            return  # KV cells are not value-indexed
        decoded = _try_decode(value)
        if isinstance(decoded, (int, float, str)) and not isinstance(
            decoded, bool
        ):
            self.inverted.add(column, decoded, ukey.encode())
            if self._search is not None:
                self._search.note_change(column, decoded)

    def _unindex(
        self, logical_key: bytes, column: str, primary_key: bytes
    ) -> None:
        if "." not in column:
            return
        previous = self.cells.latest(column, primary_key)
        if previous is None:
            return
        decoded = _try_decode(previous.value)
        if isinstance(decoded, (int, float, str)) and not isinstance(
            decoded, bool
        ):
            self.inverted.remove(column, decoded, previous.ukey.encode())
            if self._search is not None:
                self._search.note_change(column, decoded)

    # ------------------------------------------------------------------
    # key-value API (column "default"; the paper's Section 6 workloads)
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> Block:
        """Auto-commit write of one key (one ledger block)."""
        return self._commit({KV_PREFIX + key: value})

    def put_batch(self, items: Mapping[bytes, bytes]) -> Block:
        """Write many keys as a single block (deferred-style batching)."""
        return self._commit(
            {KV_PREFIX + key: value for key, value in items.items()}
        )

    def put_with_proof(
        self, key: bytes, value: bytes
    ) -> Tuple[Block, LedgerProof]:
        """Write plus inclusion proof of the new value (step 4 of the
        paper's write path: results combined with the proof)."""
        block = self.put(key, value)
        _value, proof = self.ledger.get_with_proof(KV_PREFIX + key)
        return block, proof

    def get(self, key: bytes) -> Optional[bytes]:
        """Unverified read via the B+-tree access path."""
        encoded = self.primary.get_optional(KV_PREFIX + key)
        if encoded is None:
            return None
        cell = self.cells.get_by_encoded(encoded)
        return cell.value if cell is not None else None

    def get_verified(
        self, key: bytes
    ) -> Tuple[Optional[bytes], LedgerProof]:
        """Read plus proof from the unified ledger index (one walk)."""
        self.flush_ledger()
        return self.ledger.get_with_proof(KV_PREFIX + key)

    def get_many(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        """Unverified batch read via the B+-tree access path."""
        return [self.get(key) for key in keys]

    def get_many_verified(
        self, keys: Sequence[bytes]
    ) -> Tuple[List[Optional[bytes]], LedgerMultiProof]:
        """Batch read plus one multiproof from the unified ledger index.

        All K keys are answered against the same sealed block, so the
        proof carries one block witness and each shared index node
        once (vs. K copies across K point proofs).
        """
        self.flush_ledger()
        return self.ledger.get_many_with_proof(
            [KV_PREFIX + key for key in keys]
        )

    def delete(self, key: bytes) -> Block:
        """Logical delete; history stays in earlier ledger blocks."""
        return self._commit({KV_PREFIX + key: DELETE})

    def scan(
        self, low: bytes, high: bytes
    ) -> List[Tuple[bytes, bytes]]:
        """Unverified range scan via the B+-tree."""
        results: List[Tuple[bytes, bytes]] = []
        for logical_key, encoded in self.primary.range(
            KV_PREFIX + low, KV_PREFIX + high
        ):
            cell = self.cells.get_by_encoded(encoded)
            if cell is not None:
                results.append((logical_key[len(KV_PREFIX):], cell.value))
        return results

    def scan_verified(
        self, low: bytes, high: bytes
    ) -> Tuple[List[Tuple[bytes, bytes]], LedgerRangeProof]:
        """Range scan plus one covering proof (Section 6.2.2)."""
        self.flush_ledger()
        entries, proof = self.ledger.scan_with_proof(
            KV_PREFIX + low, KV_PREFIX + high
        )
        stripped = [
            (key[len(KV_PREFIX):], value) for key, value in entries
        ]
        return stripped, proof

    def history(self, key: bytes) -> List[Tuple[int, bytes]]:
        """(timestamp, value) for every version ever written."""
        return [
            (cell.ukey.timestamp, cell.value)
            for cell in self.cells.versions(_KV_COLUMN, key)
        ]

    def get_at_block(self, key: bytes, height: int) -> Optional[bytes]:
        """Historical read from block ``height``'s index instance."""
        self.flush_ledger()
        return self.ledger.get_at(KV_PREFIX + key, height)

    def get_at_block_verified(
        self, key: bytes, height: int
    ) -> Tuple[Optional[bytes], LedgerProof]:
        self.flush_ledger()
        return self.ledger.get_at_with_proof(KV_PREFIX + key, height)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def transaction(
        self, isolation: Optional[IsolationLevel] = None
    ) -> "KvTransaction":
        """Open a transactional session over the KV namespace."""
        return KvTransaction(self, self.txn_manager.begin(isolation))

    # ------------------------------------------------------------------
    # ledger / verification plumbing
    # ------------------------------------------------------------------

    def digest(self) -> LedgerDigest:
        self.flush_ledger()
        return self.ledger.digest()

    def metrics_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Refresh derived gauges and return the registry snapshot.

        This is the *one* stats surface: ``RequestKind.STATS``, the
        ``spitz stats`` CLI subcommand and the benchmark harness all
        call it, so every exporter reports identical structure.
        """
        self.chunks.export_metrics(self.metrics)
        self.metrics.gauge("ledger.height").set(self.ledger.height)
        self.metrics.gauge("ledger.pending_writes").set(
            len(self._pending_writes)
        )
        return self.metrics.snapshot()

    def verify_chain(self) -> bool:
        self.flush_ledger()
        return self.ledger.verify_chain()

    # ------------------------------------------------------------------
    # verifiable search plane (DESIGN.md §6i)
    # ------------------------------------------------------------------

    @property
    def search_columns(self) -> Tuple[str, ...]:
        """Columns covered by the committed search index (sorted)."""
        if self._search is None:
            return ()
        return self._search.columns

    def enable_search(self, columns: Sequence[str]) -> None:
        """Start committing the given columns' postings.

        Existing postings are folded in immediately (a full rebuild
        from the inverted index), so a database that indexed rows
        before the search plane was enabled still proves complete
        answers.  Re-enabling with the same columns is a no-op.
        """
        with self.txn_manager.commit_lock:
            if self._search is not None:
                if tuple(sorted(columns)) == self._search.columns:
                    return
                raise QueryError(
                    "search index already enabled for columns "
                    f"{list(self._search.columns)}"
                )
            index = CommittedSearchIndex(self.chunks, columns)
            index.rebuild_from(self.inverted)
            self._search = index

    def search(
        self, column: str, predicate: Union[str, SearchPredicate]
    ) -> List[bytes]:
        """Unverified search: universal keys matching ``predicate``.

        Served straight from the in-memory inverted index; works on
        any "."-qualified column whether or not it is committed.
        ``predicate`` may be a :class:`SearchPredicate` or a string in
        its CLI grammar (``'>= 10'``, ``'between 3 7'``, a keyword).
        """
        if isinstance(predicate, str):
            predicate = SearchPredicate.parse(predicate)
        with self.metrics.tracer.stage_in_trace("search.query"):
            matches = evaluate_on_inverted(
                self.inverted, column, predicate
            )
        self._c_search_queries.inc()
        self._c_search_matches.inc(len(matches))
        return matches

    def search_verified(
        self, column: str, predicate: Union[str, SearchPredicate]
    ) -> Tuple[List[bytes], SearchProof]:
        """Search plus a proof of membership *and* completeness.

        The proof anchors the committed index manifest in the latest
        sealed block, then carries the matched postings' branches plus
        the boundary evidence that nothing in range was omitted.
        ``predicate`` accepts the same forms as :meth:`search`.
        """
        if isinstance(predicate, str):
            predicate = SearchPredicate.parse(predicate)
        if self._search is None:
            raise QueryError(
                "verified search requires indexed_columns= (or "
                "enable_search()); unverified search() still works"
            )
        self._ensure_search_sealed()
        with self.metrics.tracer.stage_in_trace("search.prove"):
            proof = build_search_proof(
                self.ledger, self._search, column, predicate
            )
        self._c_search_queries.inc()
        self._c_search_matches.inc(proof.result_count)
        self._c_search_proof_bytes.inc(proof.size_bytes)
        return list(proof.ukeys), proof

    def _ensure_search_sealed(self) -> None:
        """Guarantee the latest block commits the current manifest.

        Covers the cold-start case (index enabled, nothing written
        yet) and rebuilds after ``enable_search``: if the chain's
        anchored manifest is stale, seal a dedicated block carrying
        only the reserved key.
        """
        assert self._search is not None
        with self.txn_manager.commit_lock:
            self.flush_ledger()
            with self.metrics.tracer.stage("search.maintain"):
                self._c_search_maintained.inc(
                    self._search.pending_changes
                )
                manifest = self._search.seal(self.inverted)
            if self.ledger.get(SEARCH_ROOT_KEY) != manifest:
                self.ledger.append_block(
                    {SEARCH_ROOT_KEY: manifest},
                    statements=("SEARCH INDEX SEAL",),
                )

    # ------------------------------------------------------------------
    # table API
    # ------------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        self._tables[schema.name] = schema
        self._append_ledger_block(
            {},
            statements=(
                f"CREATE TABLE {schema.name} "
                f"({', '.join(f'{c.name} {c.type}' for c in schema.columns)}"
                f", PRIMARY KEY ({schema.primary_key}))",
            ),
        )
        self._notify_commit_hooks(
            "create_table",
            {
                "name": schema.name,
                "columns": [(c.name, c.type) for c in schema.columns],
                "primary_key": schema.primary_key,
            },
        )

    def table(self, name: str) -> TableSchema:
        schema = self._tables.get(name)
        if schema is None:
            raise SchemaError(f"unknown table {name!r}")
        return schema

    def tables(self) -> List[str]:
        return sorted(self._tables)

    def insert(self, table: str, row: Dict[str, Any]) -> Block:
        """Insert one full row (one ledger block)."""
        schema = self.table(table)
        schema.validate_row(row)
        pk = schema.pk_bytes(row)
        writes: Dict[bytes, object] = {
            schema.logical_key(ROW_COLUMN, pk): b"1"
        }
        for column in schema.columns:
            writes[schema.logical_key(column.name, pk)] = encode_value(
                column.type, row[column.name]
            )
        return self._commit(
            writes, statements=(f"INSERT INTO {table}",)
        )

    def update(
        self,
        table: str,
        assignments: Mapping[str, Any],
        conditions: Tuple[Condition, ...] = (),
    ) -> int:
        """Update matching rows; returns the number updated."""
        schema = self.table(table)
        for column_name, value in assignments.items():
            column = schema.column(column_name)
            if column_name == schema.primary_key:
                raise QueryError("cannot update the primary key")
        matches = self.select(table, conditions)
        for row in matches:
            pk = schema.pk_bytes(row)
            writes = {
                schema.logical_key(name, pk): encode_value(
                    schema.column(name).type, value
                )
                for name, value in assignments.items()
            }
            self._commit(writes, statements=(f"UPDATE {table}",))
        return len(matches)

    def delete_rows(
        self, table: str, conditions: Tuple[Condition, ...] = ()
    ) -> int:
        """Delete matching rows; returns the number deleted."""
        schema = self.table(table)
        matches = self.select(table, conditions)
        for row in matches:
            pk = schema.pk_bytes(row)
            writes: Dict[bytes, object] = {
                schema.logical_key(ROW_COLUMN, pk): DELETE
            }
            for column in schema.columns:
                writes[schema.logical_key(column.name, pk)] = DELETE
            self._commit(writes, statements=(f"DELETE FROM {table}",))
        return len(matches)

    def select(
        self,
        table: str,
        conditions: Tuple[Condition, ...] = (),
        columns: Tuple[str, ...] = ("*",),
        as_of_block: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Execute a query via the planner's chosen access path."""
        schema = self.table(table)
        if as_of_block is not None:
            rows = self._select_as_of(schema, conditions, as_of_block)
        else:
            rows = self._select_current(schema, conditions)
        if limit is not None:
            rows = rows[:limit]
        if columns == ("*",):
            return rows
        for name in columns:
            schema.column(name)  # validate
        return [
            {name: row[name] for name in columns} for row in rows
        ]

    def _select_current(
        self, schema: TableSchema, conditions: Tuple[Condition, ...]
    ) -> List[Dict[str, Any]]:
        plan = plan_query(conditions, schema.primary_key)
        pks = self._candidate_pks(schema, plan)
        rows: List[Dict[str, Any]] = []
        for pk in pks:
            row = self._load_row(schema, pk)
            if row is None:
                continue
            if all(c.matches(row.get(c.column)) for c in plan.residual):
                rows.append(row)
        return rows

    def _candidate_pks(
        self, schema: TableSchema, plan: Plan
    ) -> List[bytes]:
        pk_type = schema.column(schema.primary_key).type
        if plan.path is AccessPath.PRIMARY_POINT:
            return [schema.pk_bytes(plan.driver.value)]
        if plan.path is AccessPath.PRIMARY_RANGE:
            low_value, high_value = range_bounds(plan.driver)
            low = (
                encode_pk(pk_type, low_value)
                if low_value is not None
                else b""
            )
            high = (
                encode_pk(pk_type, high_value)
                if high_value is not None
                else b"\xff" * 40
            )
            low_key = schema.logical_key(ROW_COLUMN, low)
            high_key = schema.logical_key(ROW_COLUMN, high)
            prefix_len = len(schema.logical_key(ROW_COLUMN, b""))
            return [
                logical_key[prefix_len:]
                for logical_key, _enc in self.primary.range(
                    low_key, high_key
                )
            ]
        if plan.path in (
            AccessPath.INVERTED_POINT, AccessPath.INVERTED_RANGE
        ):
            column = schema.cell_column(plan.driver.column)
            if plan.path is AccessPath.INVERTED_POINT:
                ukeys = self.inverted.lookup(column, plan.driver.value)
            else:
                low_value, high_value = range_bounds(plan.driver)
                sample = plan.driver.value
                if low_value is None:
                    low_value = "" if isinstance(sample, str) else (
                        float("-inf")
                    )
                if high_value is None:
                    high_value = "\U0010ffff" * 4 if isinstance(
                        sample, str
                    ) else float("inf")
                ukeys = self.inverted.range(column, low_value, high_value)
            pks: List[bytes] = []
            seen = set()
            for encoded in ukeys:
                ukey = UniversalKey.decode(encoded)
                if ukey.primary_key not in seen:
                    seen.add(ukey.primary_key)
                    pks.append(ukey.primary_key)
            return pks
        # FULL_SCAN: walk the _row presence column.
        prefix = schema.logical_key(ROW_COLUMN, b"")
        return [
            logical_key[len(prefix):]
            for logical_key, _enc in self.primary.range(
                prefix, prefix + b"\xff" * 40
            )
        ]

    def _load_row(
        self, schema: TableSchema, pk: bytes
    ) -> Optional[Dict[str, Any]]:
        presence = self.primary.get_optional(
            schema.logical_key(ROW_COLUMN, pk)
        )
        if presence is None:
            return None
        row: Dict[str, Any] = {}
        for column in schema.columns:
            cell = self.cells.latest(schema.cell_column(column.name), pk)
            if cell is None:
                return None
            row[column.name] = decode_value(cell.value)
        return row

    def _select_as_of(
        self,
        schema: TableSchema,
        conditions: Tuple[Condition, ...],
        height: int,
    ) -> List[Dict[str, Any]]:
        """Temporal query against block ``height``'s index instance."""
        self.flush_ledger()
        tree = self.ledger.tree_at(height)
        prefix = schema.logical_key(ROW_COLUMN, b"")
        rows: List[Dict[str, Any]] = []
        for logical_key, _flag in tree.scan(prefix, prefix + b"\xff" * 40):
            pk = logical_key[len(prefix):]
            row: Dict[str, Any] = {}
            complete = True
            for column in schema.columns:
                value = tree.get(schema.logical_key(column.name, pk))
                if value is None:
                    complete = False
                    break
                row[column.name] = decode_value(value)
            if complete and all(
                c.matches(row.get(c.column)) for c in conditions
            ):
                rows.append(row)
        return rows

    def select_verified(
        self,
        table: str,
        pk_low: Any,
        pk_high: Any,
        columns: Tuple[str, ...] = ("*",),
    ) -> Tuple[List[Dict[str, Any]], List[LedgerRangeProof]]:
        """Verified pk-range select: one range proof per column.

        Ledger keys group by column then primary key, so each column's
        pk range is one contiguous ledger scan — the batched proof
        retrieval of Section 6.2.2.
        """
        schema = self.table(table)
        self.flush_ledger()
        wanted = (
            [c.name for c in schema.columns]
            if columns == ("*",)
            else list(columns)
        )
        low = schema.pk_bytes(pk_low)
        high = schema.pk_bytes(pk_high)
        proofs: List[LedgerRangeProof] = []
        per_pk: Dict[bytes, Dict[str, Any]] = {}
        for name in wanted:
            entries, proof = self.ledger.scan_with_proof(
                schema.logical_key(name, low),
                schema.logical_key(name, high),
            )
            proofs.append(proof)
            prefix_len = len(schema.logical_key(name, b""))
            for logical_key, value in entries:
                pk = logical_key[prefix_len:]
                per_pk.setdefault(pk, {})[name] = decode_value(value)
        rows = [
            per_pk[pk]
            for pk in sorted(per_pk)
            if len(per_pk[pk]) == len(wanted)
        ]
        return rows, proofs

    def row_history(
        self, table: str, pk_value: Any
    ) -> List[Tuple[int, Optional[Dict[str, Any]]]]:
        """(block height, row dict or None) whenever the row changed."""
        schema = self.table(table)
        pk = schema.pk_bytes(pk_value)
        presence_key = schema.logical_key(ROW_COLUMN, pk)
        self.flush_ledger()
        out: List[Tuple[int, Optional[Dict[str, Any]]]] = []
        previous: object = _SENTINEL
        for height in range(self.ledger.height):
            tree = self.ledger.tree_at(height)
            if tree.get(presence_key) is None:
                row: Optional[Dict[str, Any]] = None
            else:
                row = {}
                for column in schema.columns:
                    value = tree.get(schema.logical_key(column.name, pk))
                    if value is not None:
                        row[column.name] = decode_value(value)
            if row != previous:
                out.append((height, row))
                previous = row
        return out

    # ------------------------------------------------------------------
    # SQL entry point
    # ------------------------------------------------------------------

    def sql(self, text: str):
        """Parse and execute one SQL statement.

        Returns: rows for SELECT, the ledger block for INSERT/CREATE,
        and the affected-row count for UPDATE/DELETE.
        """
        statement = sql_module.parse(text)
        if isinstance(statement, sql_module.CreateTable):
            schema = TableSchema.make(
                statement.table,
                list(statement.columns),
                statement.primary_key,
            )
            self.create_table(schema)
            return self.ledger.latest_block()
        if isinstance(statement, sql_module.Insert):
            row = dict(zip(statement.columns, statement.values))
            return self.insert(statement.table, row)
        if isinstance(statement, sql_module.Select):
            if statement.aggregate is not None:
                return self._select_aggregate(statement)
            if statement.order_by is None:
                return self.select(
                    statement.table,
                    statement.where,
                    statement.columns,
                    as_of_block=statement.as_of_block,
                    limit=statement.limit,
                )
            # Sort on full rows (the ORDER BY column need not be
            # projected), then apply LIMIT and the projection.
            column, descending = statement.order_by
            schema = self.table(statement.table)
            schema.column(column)  # validate
            rows = self.select(
                statement.table,
                statement.where,
                ("*",),
                as_of_block=statement.as_of_block,
            )
            rows.sort(key=lambda row: row[column], reverse=descending)
            if statement.limit is not None:
                rows = rows[:statement.limit]
            if statement.columns == ("*",):
                return rows
            for name in statement.columns:
                schema.column(name)
            return [
                {name: row[name] for name in statement.columns}
                for row in rows
            ]
        if isinstance(statement, sql_module.Update):
            return self.update(
                statement.table,
                dict(statement.assignments),
                statement.where,
            )
        if isinstance(statement, sql_module.Delete):
            return self.delete_rows(statement.table, statement.where)
        raise QueryError(f"unsupported statement {statement!r}")


    def _select_aggregate(self, statement) -> List[Dict[str, Any]]:
        """Execute a single-aggregate SELECT (optionally grouped)."""
        function, target = statement.aggregate
        schema = self.table(statement.table)
        if target != "*":
            schema.column(target)  # validate
        if statement.group_by is not None:
            schema.column(statement.group_by)
        rows = self.select(
            statement.table,
            statement.where,
            ("*",),
            as_of_block=statement.as_of_block,
        )
        label = f"{function}({target})"
        if statement.group_by is None:
            return [{label: _aggregate(function, target, rows)}]
        groups: Dict[Any, List[Dict[str, Any]]] = {}
        for row in rows:
            groups.setdefault(row[statement.group_by], []).append(row)
        result = [
            {
                statement.group_by: group_value,
                label: _aggregate(function, target, group_rows),
            }
            for group_value, group_rows in sorted(groups.items())
        ]
        if statement.limit is not None:
            result = result[:statement.limit]
        return result


def _aggregate(function: str, target: str, rows) -> Any:
    """Compute one aggregate over already-filtered rows."""
    if function == "count":
        if target == "*":
            return len(rows)
        return sum(1 for row in rows if row.get(target) is not None)
    values = [row[target] for row in rows if row.get(target) is not None]
    if not values:
        return None
    if function == "sum":
        return sum(values)
    if function == "avg":
        return sum(values) / len(values)
    if function == "min":
        return min(values)
    return max(values)


class KvTransaction:
    """Transactional KV session (reads snapshot, writes buffered).

    Thin adapter translating user keys to logical keys; commit routes
    through the node's certifier and seals one ledger block via the
    commit listener.
    """

    def __init__(self, db: SpitzDatabase, txn: Transaction):
        self._db = db
        self._txn = txn

    def get(self, key: bytes) -> Optional[bytes]:
        # Every committed write (auto-commit or transactional) is
        # installed in the MVCC store, so the snapshot read is complete.
        return self._txn.read(KV_PREFIX + key)

    def put(self, key: bytes, value: bytes) -> None:
        self._txn.write(KV_PREFIX + key, value)

    def delete(self, key: bytes) -> None:
        self._txn.delete(KV_PREFIX + key)

    def commit(self) -> int:
        return self._txn.commit()

    def abort(self) -> None:
        self._txn.abort()

    def __enter__(self) -> "KvTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return self._txn.__exit__(exc_type, exc, tb)


class _Sentinel:
    __slots__ = ()


_SENTINEL = _Sentinel()


def _parse_logical_key(logical_key: bytes) -> Tuple[str, bytes]:
    """Split a logical key into (cell-store column, primary key)."""
    if logical_key.startswith(KV_PREFIX):
        return _KV_COLUMN, logical_key[len(KV_PREFIX):]
    if logical_key.startswith(TABLE_PREFIX):
        body = logical_key[len(TABLE_PREFIX):]
        table, column, pk = body.split(b"\x00", 2)
        return f"{table.decode('utf-8')}.{column.decode('utf-8')}", pk
    if logical_key.startswith(DOC_PREFIX):
        body = logical_key[len(DOC_PREFIX):]
        collection, doc_id = body.split(b"\x00", 1)
        return f"{collection.decode('utf-8')}#doc", doc_id
    raise QueryError(f"malformed logical key {logical_key!r}")


def _try_decode(value: bytes):
    """Best-effort typed decode (None when the value is raw KV bytes)."""
    try:
        return decode_value(value)
    except Exception:
        return None
