"""Client-side verification.

"Clients can use the digest of the ledger to perform verification
locally ... recalculate the digest with the received proof and compare
it with the previous digest saved locally" (Section 5.3).  The
verifier below is that client: it pins the most recent trusted ledger
digest, checks proofs against it, and supports both online (check
immediately) and deferred (batch) modes.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import TamperDetectedError, VerificationError
from repro.core.ledger import LedgerDigest
from repro.core.proofs import (
    LedgerMultiProof,
    LedgerProof,
    LedgerRangeProof,
)
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.search.proofs import SearchProof
from repro.txn.batch import DeferredVerifier

Proof = Union[LedgerProof, LedgerRangeProof, LedgerMultiProof, SearchProof]


class ClientVerifier:
    """A client's local trust anchor.

    ``deferred`` switches Section 5.3's deferred scheme on: proofs are
    queued and checked in batches of ``batch_size``, trading detection
    latency for throughput (measured in ``bench_ablation_deferred``).

    Counters (``checks``/``detections``/``cache_hits``/``cache_misses``)
    are kept accurate in *both* modes: deferred checks — whether run by
    an explicit :meth:`flush` or a batch-full auto-flush inside
    :meth:`verify` — are accounted from the queue's own totals, so a
    batch that fails mid-flush still registers its detection.

    Fork detection: :meth:`observe` rejects not only digests *behind*
    the trusted height but also **same-height digests whose chain
    digest or index root differ** (an equal-height fork was previously
    adopted silently), and :meth:`advance` checks the offered
    ``tree_root`` against the trusted digest even when the extension
    is empty (an empty extension previously bypassed the index-root
    comparison entirely).
    """

    def __init__(
        self,
        deferred: bool = False,
        batch_size: int = 32,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._trusted: Optional[LedgerDigest] = None
        self._queue = DeferredVerifier(batch_size) if deferred else None
        # Content-addressed memoization across proofs: a node whose
        # bytes hashed to its address once never needs re-hashing, and
        # a block header whose chain link was recomputed once stays
        # valid.  This is what makes verification of consecutive reads
        # cheap (they share the ledger index's upper levels).
        self._node_cache: dict = {}
        self._block_cache: set = set()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._c_checks = self.metrics.counter("verifier.checks")
        self._c_detections = self.metrics.counter("verifier.detections")
        self._c_cache_hits = self.metrics.counter("verifier.cache_hits")
        self._c_cache_misses = self.metrics.counter(
            "verifier.cache_misses"
        )
        self.checks = 0
        self.detections = 0
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def trusted_digest(self) -> Optional[LedgerDigest]:
        return self._trusted

    def trust(self, digest: LedgerDigest) -> None:
        """Adopt a digest as trusted (first contact / out-of-band)."""
        self._trusted = digest

    def observe(self, digest: LedgerDigest) -> None:
        """Advance the trusted digest after a successful interaction.

        Refuses to move backwards: a server presenting an older digest
        than one already trusted is reporting a forked or truncated
        ledger.  A digest at the *same* height must match the trusted
        one exactly — equal height with a different chain digest or
        index root is a fork, not progress.  Forward moves are
        accepted on faith here; use :meth:`advance` with an extension
        proof when the link between the old and new digests must
        itself be verified.
        """
        if (
            self._trusted is not None
            and digest.__class__ is not self._trusted.__class__
        ):
            # A single-ledger digest offered where a sharded one is
            # pinned (or vice versa) is not progress on the same
            # ledger; heights of different digest kinds are not
            # comparable, so treat the swap as a fork attempt.
            self._record_detection()
            raise TamperDetectedError(
                f"digest kind changed: trusted "
                f"{self._trusted.__class__.__name__}, offered "
                f"{digest.__class__.__name__}"
            )
        if self._trusted is not None and digest.height < self._trusted.height:
            self._record_detection()
            raise TamperDetectedError(
                f"ledger went backwards: trusted height "
                f"{self._trusted.height}, offered {digest.height}"
            )
        if (
            self._trusted is not None
            and digest.height == self._trusted.height
            and (
                digest.chain_digest != self._trusted.chain_digest
                or digest.tree_root != self._trusted.tree_root
            )
        ):
            self._record_detection()
            raise TamperDetectedError(
                f"forked ledger at height {digest.height}: offered "
                "digest disagrees with the trusted one"
            )
        self._trusted = digest

    def advance(self, digest: LedgerDigest, extension) -> None:
        """Verify that ``digest`` extends the trusted digest, then adopt.

        ``extension`` is the server-supplied list of block witnesses
        from the trusted height up to ``digest.height`` (see
        :meth:`~repro.core.ledger.SpitzLedger.extension_proof`).  The
        chain is replayed link by link from the trusted chain digest;
        any reordering, substitution or truncation breaks a link.
        This is the chain analogue of a Merkle consistency proof.
        """
        from repro.core.ledger import block_digest_of, chain_digest_of

        if self._trusted is None:
            raise VerificationError(
                "no trusted digest: call trust() first"
            )
        if digest.height < self._trusted.height:
            self._record_detection()
            raise TamperDetectedError("ledger went backwards")
        if len(extension) != digest.height - self._trusted.height:
            self._record_detection()
            raise TamperDetectedError(
                f"extension has {len(extension)} blocks, expected "
                f"{digest.height - self._trusted.height}"
            )
        running = self._trusted.chain_digest
        for witness in extension:
            if witness.previous_chain_digest != running:
                self._record_detection()
                raise TamperDetectedError(
                    f"extension breaks at block #{witness.height}: "
                    "does not chain from the trusted digest"
                )
            block_digest = block_digest_of(
                height=witness.height,
                previous=witness.previous_chain_digest,
                tree_root=witness.tree_root,
                writes_digest=witness.writes_digest,
                statements_digest=witness.statements_digest,
            )
            running = chain_digest_of(running, block_digest)
            if witness.chain_digest != running:
                self._record_detection()
                raise TamperDetectedError(
                    f"extension block #{witness.height} has an "
                    "inconsistent chain digest"
                )
        if running != digest.chain_digest:
            self._record_detection()
            raise TamperDetectedError(
                "extension does not reach the offered digest"
            )
        if extension:
            if extension[-1].tree_root != digest.tree_root:
                self._record_detection()
                raise TamperDetectedError(
                    "offered digest's index root does not match the "
                    "last extension block"
                )
        elif digest.tree_root != self._trusted.tree_root:
            # Empty extension means same height and (chain-checked
            # above) same history — the index root must not change.
            self._record_detection()
            raise TamperDetectedError(
                "offered digest forges the index root at the trusted "
                "height"
            )
        self._trusted = digest

    # -- verification ---------------------------------------------------------

    def verify(self, proof: Proof) -> bool:
        """Check ``proof`` against the trusted digest.

        In deferred mode the check is queued and True is returned
        optimistically; :meth:`flush` (or queue auto-flush) performs
        the work and raises :class:`TamperDetectedError` on failure.
        """
        if self._trusted is None:
            raise VerificationError(
                "no trusted digest: call trust()/observe() first"
            )
        trusted_chain = self._trusted.chain_digest
        if self._queue is not None:
            self._run_deferred(
                lambda: self._queue.submit(
                    label=self._label(proof),
                    check=lambda: proof.verify(
                        trusted_chain, self._node_cache, self._block_cache
                    ),
                )
            )
            return True
        self.checks += 1
        self._c_checks.inc()
        nodes_before = len(self._node_cache)
        with self.metrics.tracer.stage_in_trace("verifier.verify"):
            ok = proof.verify(
                trusted_chain, self._node_cache, self._block_cache
            )
        self._account_cache(proof, nodes_before)
        if not ok:
            self._record_detection()
        return ok

    def verify_or_raise(self, proof: Proof) -> None:
        """Like :meth:`verify` but raises on failure (online mode)."""
        if not self.verify(proof):
            raise TamperDetectedError(
                f"proof failed verification: {self._label(proof)}"
            )

    def flush(self) -> None:
        """Run queued deferred checks (no-op in online mode)."""
        if self._queue is not None:
            self._run_deferred(self._queue.flush)

    @property
    def pending(self) -> int:
        return self._queue.pending if self._queue is not None else 0

    # -- counter plumbing -----------------------------------------------------

    def _record_detection(self, n: int = 1) -> None:
        self.detections += n
        self._c_detections.inc(n)

    def _run_deferred(self, operation):
        """Run a queue operation, syncing counters from its totals.

        Both :meth:`flush` and a batch-full auto-flush inside
        ``submit`` funnel through here, so ``checks``/``detections``
        stay accurate no matter which path executed the batch — and
        stay accurate even when the batch raises
        :class:`TamperDetectedError` mid-flush (the bug this replaced:
        ``detections`` was never incremented on a failed deferred
        flush).  In raise mode the failing check stays queued (not
        counted in ``verified``) but it *did* run, so the recorded
        failure counts toward ``checks`` as well.
        """
        assert self._queue is not None
        before_verified = self._queue.verified
        before_failures = len(self._queue.failures)
        try:
            return operation()
        finally:
            verified = self._queue.verified - before_verified
            failures = len(self._queue.failures) - before_failures
            self.checks += verified + failures
            self._c_checks.inc(verified + failures)
            if failures:
                self._record_detection(failures)

    def _account_cache(self, proof: Proof, nodes_before: int) -> None:
        """Attribute one proof's nodes to cache hits vs misses."""
        if isinstance(proof, LedgerProof):
            nodes = proof.siri.nodes
        elif isinstance(proof, LedgerMultiProof):
            nodes = proof.multi.nodes
        elif isinstance(proof, LedgerRangeProof):
            nodes = proof.range_proof.nodes
        elif isinstance(proof, SearchProof):
            nodes = proof.cacheable_nodes
        else:
            # Sharded (and future) proof types advertise their index
            # nodes themselves; anything that doesn't simply skips
            # cache accounting.
            nodes = getattr(proof, "cacheable_nodes", ())
        misses = len(self._node_cache) - nodes_before
        hits = max(len(nodes) - misses, 0)
        self.cache_hits += hits
        self.cache_misses += misses
        self._c_cache_hits.inc(hits)
        self._c_cache_misses.inc(misses)

    @staticmethod
    def _label(proof: Proof) -> str:
        if isinstance(proof, LedgerProof):
            return f"point:{proof.key!r}@block{proof.block.height}"
        if isinstance(proof, LedgerMultiProof):
            return (
                f"multi:{len(proof.multi.entries)}keys"
                f"@block{proof.block.height}"
            )
        if isinstance(proof, LedgerRangeProof):
            return (
                f"range:{proof.range_proof.low!r}.."
                f"{proof.range_proof.high!r}@block{proof.block.height}"
            )
        label = getattr(proof, "label", None)
        return label if label is not None else type(proof).__name__


class VerifiedWriter:
    """The deferred write-verification client of Section 5.3.

    "To improve verification throughput, we use a deferred scheme,
    which means the transactions are verified asynchronously in
    batch."  Writes go through immediately; every ``batch_size``
    writes the writer seals the pending ledger block, fetches one
    proof per written key against the *current* digest, and verifies
    them all (sharing the index's upper levels through the verifier's
    node cache).

    Detection latency is bounded by the batch size — the trade-off
    the paper accepts for throughput, measured in
    ``bench_ablation_deferred``.
    """

    def __init__(self, db, verifier: "ClientVerifier", batch_size: int = 16):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._db = db
        self._verifier = verifier
        self._batch_size = batch_size
        self._pending_keys = []
        self.writes = 0
        self.batches = 0

    def put(self, key: bytes, value: bytes) -> None:
        """Write now; proof verification is deferred to the batch."""
        self._db.put(key, value)
        self._pending_keys.append(key)
        self.writes += 1
        if len(self._pending_keys) >= self._batch_size:
            self.flush()

    def flush(self) -> None:
        """Verify every pending write against the current digest."""
        if not self._pending_keys:
            return
        self._verifier.observe(self._db.digest())
        for key in self._pending_keys:
            _value, proof = self._db.get_verified(key)
            self._verifier.verify_or_raise(proof)
        self._pending_keys = []
        self.batches += 1
