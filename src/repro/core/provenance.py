"""Provenance queries over the ledger.

LineageChain (paper Section 2.2) motivates fine-grained provenance as
a first-class feature of verifiable systems: not just *what* a value
is, but *which operations produced each version*.  Spitz's blocks
already commit to the statements that produced them (Section 5:
"Each block tracks the modification of the records, query statements,
metadata...").  This module turns that into a query surface:

- :func:`key_provenance` — every state a key went through, each paired
  with the statements of the block that produced it;
- :func:`blocks_touching` — which blocks wrote a key (via the per-block
  index instances, so the answer is derived from authenticated state);
- :func:`verify_statements` — check retained statement plaintext
  against the block headers (they commit to its digest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crypto.hashing import hash_value
from repro.core.ledger import SpitzLedger


@dataclass(frozen=True)
class ProvenanceEntry:
    """One step in a key's lineage."""

    height: int
    value: Optional[bytes]  # None = absent/deleted at this block
    statements: Tuple[str, ...]


def blocks_touching(ledger: SpitzLedger, key: bytes) -> List[int]:
    """Heights of the blocks that changed ``key``.

    Derived by diffing consecutive per-block index instances, so the
    answer reflects the authenticated ledger state rather than any
    side metadata.
    """
    heights: List[int] = []
    previous: Optional[bytes] = None
    for height in range(ledger.height):
        value = ledger.tree_at(height).get(key)
        if height == 0:
            if value is not None:
                heights.append(height)
        elif value != previous:
            heights.append(height)
        previous = value
    return heights


def key_provenance(
    ledger: SpitzLedger, key: bytes
) -> List[ProvenanceEntry]:
    """The full lineage of ``key``: every state change with the
    statements that produced it."""
    return [
        ProvenanceEntry(
            height=height,
            value=ledger.tree_at(height).get(key),
            statements=ledger.statements(height),
        )
        for height in blocks_touching(ledger, key)
    ]


def verify_statements(ledger: SpitzLedger) -> List[int]:
    """Check every block's retained statements against its header.

    Returns the heights whose plaintext does NOT match the committed
    ``statements_digest`` (empty list = all provenance is intact).
    """
    bad: List[int] = []
    for height in range(ledger.height):
        block = ledger.block(height)
        if hash_value(tuple(ledger.statements(height))) != (
            block.statements_digest
        ):
            bad.append(height)
    return bad
