"""The auditor component.

"The auditor communicates with the ledger in the storage layer to keep
track of data changes" (Section 5).  In the write path it is step (2):
"the auditor checks the write operations and updates the ledger.  The
ledger records the changes and returns a proof to the auditor."  In
the read path it is step (3): "the processor visits the ledger via the
auditor, getting the proofs of the results."

The auditor is also the only component awake in ledger-only mode (the
non-intrusive deployment of Section 5.1).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from repro.errors import VerificationError
from repro.core.ledger import Block, LedgerDigest, SpitzLedger
from repro.core.proofs import LedgerProof, LedgerRangeProof


class Auditor:
    """Mediates every ledger interaction of one processor node."""

    def __init__(self, ledger: SpitzLedger):
        self._ledger = ledger
        self.writes_recorded = 0
        self.proofs_issued = 0

    # -- write path (Section 5.1, step 2) --------------------------------

    def record(
        self,
        writes: Mapping[bytes, object],
        statements: Sequence[str] = (),
    ) -> Tuple[Block, LedgerProof]:
        """Check and record a write set; return block + witness proof.

        The returned proof covers the first written key in the new
        index instance — the ledger's acknowledgement that the batch
        was sealed.  Callers wanting per-key proofs ask
        :meth:`prove` afterwards.
        """
        self._check_writes(writes)
        block = self._ledger.append_block(writes, statements)
        self.writes_recorded += len(writes)
        witness_key = next(iter(sorted(writes))) if writes else b""
        _value, proof = self._ledger.get_with_proof(witness_key)
        self.proofs_issued += 1
        return block, proof

    @staticmethod
    def _check_writes(writes: Mapping[bytes, object]) -> None:
        """The auditor "checks the write operations": structural
        validation before anything reaches the ledger."""
        for key in writes:
            if not isinstance(key, bytes) or not key:
                raise VerificationError(
                    f"auditor rejected write with invalid key {key!r}"
                )

    # -- read path (Section 5.1, step 3) ----------------------------------

    def prove(self, key: bytes) -> Tuple[Optional[bytes], LedgerProof]:
        """Fetch the proof (and value) for one key."""
        self.proofs_issued += 1
        return self._ledger.get_with_proof(key)

    def prove_range(
        self, low: bytes, high: bytes
    ) -> Tuple[List[Tuple[bytes, bytes]], LedgerRangeProof]:
        """Fetch entries + one covering proof for a key range."""
        self.proofs_issued += 1
        return self._ledger.scan_with_proof(low, high)

    def digest(self) -> LedgerDigest:
        return self._ledger.digest()

    def audit_chain(self) -> bool:
        """Full-history consistency check of the block chain."""
        return self._ledger.verify_chain()
