"""Virtual cell store.

"Built on top of ForkBase is a virtual cell store, as opposed to row
or column store in traditional databases" (Section 5).  Every write
creates a new immutable cell version addressed by its universal key;
values are deduplicated in the shared chunk store; a B+-tree over the
encoded universal keys provides ordered access, so a prefix range walk
enumerates a cell's version history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.forkbase.chunk_store import ChunkStore
from repro.indexes.bplus import BPlusTree
from repro.core.universal_key import UniversalKey


@dataclass(frozen=True)
class Cell:
    """One immutable cell version."""

    ukey: UniversalKey
    value: bytes


class CellStore:
    """Universal-key-addressed immutable cells over a chunk store."""

    def __init__(self, chunks: ChunkStore):
        self._chunks = chunks
        # encoded universal key -> value content address; the B+-tree
        # serves ordered access (version enumeration, scans) and the
        # hash sidecar serves exact-match lookups.
        self._index = BPlusTree()
        self._by_encoded: dict = {}
        self.writes = 0

    def put(
        self, column: str, primary_key: bytes, timestamp: int, value: bytes
    ) -> UniversalKey:
        """Store a new cell version; returns its universal key."""
        ukey = UniversalKey.for_cell(column, primary_key, timestamp, value)
        address = self._chunks.put(value)
        encoded = ukey.encode()
        self._index.insert(encoded, (ukey, address))
        self._by_encoded[encoded] = (ukey, address)
        self.writes += 1
        return ukey

    def get(self, ukey: UniversalKey) -> Optional[bytes]:
        """Value of an exact cell version (None if unknown)."""
        entry = self._index.get_optional(ukey.encode())
        if entry is None:
            return None
        _ukey, address = entry
        return self._chunks.get(address)

    def get_by_encoded(self, encoded: bytes) -> Optional[Cell]:
        entry = self._by_encoded.get(encoded)
        if entry is None:
            return None
        ukey, address = entry
        return Cell(ukey=ukey, value=self._chunks.get(address))

    def latest(
        self, column: str, primary_key: bytes
    ) -> Optional[Cell]:
        """Most recent version of a cell (None if never written)."""
        versions = self.versions(column, primary_key)
        return versions[-1] if versions else None

    def versions(self, column: str, primary_key: bytes) -> List[Cell]:
        """All versions of a cell, oldest first."""
        low, high = UniversalKey.prefix(column, primary_key)
        cells: List[Cell] = []
        for _encoded, (ukey, address) in self._index.range(low, high):
            cells.append(Cell(ukey=ukey, value=self._chunks.get(address)))
        return cells

    def at_time(
        self, column: str, primary_key: bytes, timestamp: int
    ) -> Optional[Cell]:
        """Latest version with ``ukey.timestamp <= timestamp``."""
        chosen: Optional[Cell] = None
        for cell in self.versions(column, primary_key):
            if cell.ukey.timestamp <= timestamp:
                chosen = cell
            else:
                break
        return chosen

    def scan(self, low: bytes, high: bytes) -> Iterator[Cell]:
        """Cells whose encoded universal key lies in ``[low, high]``."""
        for _encoded, (ukey, address) in self._index.range(low, high):
            yield Cell(ukey=ukey, value=self._chunks.get(address))

    def __len__(self) -> int:
        return len(self._index)
