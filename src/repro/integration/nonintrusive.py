"""The non-intrusive design (Figure 3; measured in Figure 8).

An unmodified underlying database (the immutable KVS) runs beside a
*separate* ledger database (Spitz "solely waking up the auditor",
Section 5.1).  The client talks to both over the simulated network:

- **read**: fetch the value from the underlying DB (1 round trip),
  fetch the proof from the ledger DB (1 round trip), verify locally;
- **write**: stage on both systems and commit atomically — a
  coordination round on top of the two data round trips.

The extra hops and (de)serialization are exactly the overhead
Section 6.2.3 attributes the 3–6× gap to.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import IntegrationError
from repro.core.database import SpitzDatabase
from repro.core.ledger import LedgerDigest
from repro.core.proofs import LedgerProof, LedgerRangeProof
from repro.core.schema import KV_PREFIX
from repro.integration.simnet import Channel
from repro.kvstore.kvs import ImmutableKVS


class _KvsServer:
    """Server side of the underlying-database channel."""

    def __init__(self) -> None:
        self.kvs = ImmutableKVS()
        self._staged: Dict[int, Tuple[bytes, bytes]] = {}
        self._next_stage = 0

    def handle(self, request: Tuple[str, tuple]) -> Any:
        op, args = request
        if op == "get":
            return self.kvs.get(args[0])
        if op == "scan":
            return self.kvs.scan(args[0], args[1])
        if op == "stage":
            self._next_stage += 1
            self._staged[self._next_stage] = (args[0], args[1])
            return self._next_stage
        if op == "commit":
            key, value = self._staged.pop(args[0])
            self.kvs.put(key, value)
            return True
        if op == "abort":
            self._staged.pop(args[0], None)
            return True
        raise IntegrationError(f"kvs server: unknown op {op!r}")


class _LedgerServer:
    """Server side of the ledger-database channel (Spitz, auditor only)."""

    def __init__(self, mask_bits: int = 3):
        self.ledger_db = SpitzDatabase(
            mask_bits=mask_bits, ledger_only=True
        )

    def handle(self, request: Tuple[str, tuple]) -> Any:
        op, args = request
        ledger = self.ledger_db.ledger
        if op == "append":
            key, value = args
            ledger.append_block({KV_PREFIX + key: value})
            return ledger.digest()
        if op == "prove":
            value, proof = ledger.get_with_proof(KV_PREFIX + args[0])
            return value, proof, ledger.digest()
        if op == "prove_range":
            entries, proof = ledger.scan_with_proof(
                KV_PREFIX + args[0], KV_PREFIX + args[1]
            )
            return entries, proof, ledger.digest()
        if op == "digest":
            return ledger.digest()
        raise IntegrationError(f"ledger server: unknown op {op!r}")


class NonIntrusiveVDB:
    """Client-side facade over the two remote systems.

    Idempotent operations (reads, proofs, digests) retry through
    :meth:`Channel.call_with_retry` up to ``retry_attempts`` times —
    a lost message on either leg (request *or* response) of those
    calls is absorbed.  Writes are not retried: a response-leg loss
    after the server applied an append must surface, not re-execute.
    """

    def __init__(
        self,
        mask_bits: int = 3,
        loss_every: int = 0,
        retry_attempts: int = 3,
    ):
        self._kvs_server = _KvsServer()
        self._ledger_server = _LedgerServer(mask_bits=mask_bits)
        self.kvs_channel = Channel(
            self._kvs_server.handle, loss_every=loss_every
        )
        self.ledger_channel = Channel(
            self._ledger_server.handle, loss_every=loss_every
        )
        self.retry_attempts = retry_attempts

    # -- writes ------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> LedgerDigest:
        """Atomic write to both systems.

        Stage on the underlying DB, append to the ledger, then commit
        the stage — three round trips (abort the stage if the ledger
        append fails, so the two systems never diverge).
        """
        stage_id = self.kvs_channel.call(("stage", (key, value)))
        try:
            digest = self.ledger_channel.call(("append", (key, value)))
        except Exception:
            self.kvs_channel.call(("abort", (stage_id,)))
            raise
        self.kvs_channel.call(("commit", (stage_id,)))
        return digest

    # -- reads -------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Unverified read: underlying database only (1 round trip)."""
        return self.kvs_channel.call_with_retry(
            ("get", (key,)), attempts=self.retry_attempts
        )

    def get_verified(
        self, key: bytes
    ) -> Tuple[Optional[bytes], LedgerProof, LedgerDigest]:
        """Verified read: value from the DB, proof from the ledger.

        Returns (value, proof, ledger digest); the caller verifies
        with a :class:`~repro.core.verifier.ClientVerifier` and must
        also check that the proven value equals the returned one —
        that cross-check is what catches a tampered underlying DB.
        """
        value = self.kvs_channel.call_with_retry(
            ("get", (key,)), attempts=self.retry_attempts
        )
        proven_value, proof, digest = self.ledger_channel.call_with_retry(
            ("prove", (key,)), attempts=self.retry_attempts
        )
        if proven_value != value:
            raise IntegrationError(
                "underlying database and ledger disagree on "
                f"{key!r}: {value!r} vs {proven_value!r}"
            )
        return value, proof, digest

    def scan(self, low: bytes, high: bytes) -> List[Tuple[bytes, bytes]]:
        return self.kvs_channel.call_with_retry(
            ("scan", (low, high)), attempts=self.retry_attempts
        )

    def scan_verified(
        self, low: bytes, high: bytes
    ) -> Tuple[List[Tuple[bytes, bytes]], LedgerRangeProof, LedgerDigest]:
        values = self.kvs_channel.call_with_retry(
            ("scan", (low, high)), attempts=self.retry_attempts
        )
        entries, proof, digest = self.ledger_channel.call_with_retry(
            ("prove_range", (low, high)), attempts=self.retry_attempts
        )
        stripped = [
            (key[len(KV_PREFIX):], value) for key, value in entries
        ]
        if stripped != values:
            raise IntegrationError(
                "underlying database and ledger disagree on range "
                f"{low!r}..{high!r}"
            )
        return values, proof, digest

    def digest(self) -> LedgerDigest:
        return self.ledger_channel.call_with_retry(
            ("digest", ()), attempts=self.retry_attempts
        )

    # -- accounting -----------------------------------------------------------

    @property
    def round_trips(self) -> int:
        return (
            self.kvs_channel.stats.round_trips
            + self.ledger_channel.stats.round_trips
        )
