"""Integration designs for extending existing systems to a VDB
(paper Section 4, evaluated in Section 6.2.3).

- :mod:`~repro.integration.simnet` — the simulated network channel
  standing in for the wire between systems;
- :mod:`~repro.integration.nonintrusive` — Figure 3: an unmodified
  database plus a *separate* ledger database, every request crossing
  the channel;
- :mod:`~repro.integration.intrusive` — Figure 4: the ledger embedded
  in the database, paid for by a data migration.
"""

from repro.integration.intrusive import IntrusiveVDB, migrate_kvs_to_spitz
from repro.integration.nonintrusive import NonIntrusiveVDB
from repro.integration.simnet import Channel, NetworkStats

__all__ = [
    "Channel",
    "IntrusiveVDB",
    "NetworkStats",
    "NonIntrusiveVDB",
    "migrate_kvs_to_spitz",
]
