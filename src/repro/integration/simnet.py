"""Simulated network channel.

The paper's Figure 8 experiment runs the underlying database and the
ledger database as two systems; the gap it measures comes from "the
interactions between the Ledger database and the underlying database
[which] inevitably introduce additional cost on network communication,
query planning, etc." (Section 6.2.3).

We have one process (DESIGN.md's substitution table), so the channel
models the costs *deterministically*: every message is actually
serialized, framed, check-summed and deserialized — real CPU work
proportional to payload size, the dominant in-process analogue of a
fast datacenter link.  No wall-clock sleeping is involved, so
throughput ratios are stable across machines.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import NetworkError


@dataclass
class NetworkStats:
    """Per-channel accounting."""

    messages: int = 0
    bytes_sent: int = 0
    round_trips: int = 0
    #: Failed attempts that were retried (see ``call_with_retry``).
    retries: int = 0
    #: Deterministic backoff budget "spent" on retries, in abstract
    #: units (no wall-clock sleeping happens; exponential doubling).
    backoff_units: float = 0.0


class Channel:
    """A request/response channel to a remote service.

    ``handler`` plays the server side: it receives the decoded request
    object and returns a response object.  ``call`` performs one round
    trip: serialize + frame + checksum the request, "transmit", decode
    on the server, then the same on the way back.

    ``loss_every`` injects a failure on every Nth message (0 = never),
    for retry/timeout tests.
    """

    #: Per-message framing overhead, bytes (headers etc.).
    FRAME_OVERHEAD = 64

    def __init__(
        self,
        handler: Callable[[Any], Any],
        loss_every: int = 0,
    ):
        self._handler = handler
        self._loss_every = loss_every
        self.stats = NetworkStats()

    def _transmit(self, message: Any) -> Any:
        """One direction: encode, frame, checksum, decode."""
        payload = pickle.dumps(message, protocol=4)
        checksum = zlib.crc32(payload)
        frame = (
            len(payload).to_bytes(4, "big")
            + checksum.to_bytes(4, "big")
            + payload
        )
        self.stats.messages += 1
        self.stats.bytes_sent += len(frame) + self.FRAME_OVERHEAD
        if (
            self._loss_every
            and self.stats.messages % self._loss_every == 0
        ):
            raise NetworkError("simulated message loss")
        # Receiver side: verify the checksum, decode.
        received = frame[8:]
        if zlib.crc32(received) != checksum:
            raise NetworkError("checksum mismatch")
        return pickle.loads(received)

    def call(self, request: Any) -> Any:
        """One full round trip through the channel."""
        decoded_request = self._transmit(request)
        response = self._handler(decoded_request)
        decoded_response = self._transmit(response)
        self.stats.round_trips += 1
        return decoded_response

    def call_with_retry(
        self, request: Any, attempts: int = 3, backoff: float = 1.0
    ) -> Any:
        """``call`` with deterministic exponential-backoff retries.

        A loss can hit either leg: the request before the server runs,
        or the *response* after it ran — so only idempotent requests
        should be retried (re-running a read is safe; re-running an
        append is not).  Backoff is accounted in ``stats`` rather than
        slept (``backoff * 2**attempt`` units per failure), keeping
        simulations wall-clock free and ratios machine-stable.

        Raises the last :class:`NetworkError` after ``attempts`` tries.
        """
        if attempts < 1:
            raise ValueError("attempts must be positive")
        for attempt in range(attempts):
            try:
                return self.call(request)
            except NetworkError:
                if attempt == attempts - 1:
                    raise
                self.stats.retries += 1
                self.stats.backoff_units += backoff * (2 ** attempt)
