"""The intrusive design (Figure 4).

The ledger is embedded inside the database — which is exactly what
Spitz is — so the adapter below is thin.  What Section 4 emphasizes is
the *cost of getting there*: "it incurs significant cost in data
migration.  In particular, data must be moved to the new system".
:func:`migrate_kvs_to_spitz` implements that migration (preserving
version history), and its cost is measured in
``bench_ablation_designs``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.database import SpitzDatabase
from repro.core.ledger import LedgerDigest
from repro.core.proofs import LedgerProof
from repro.kvstore.kvs import ImmutableKVS


def migrate_kvs_to_spitz(
    kvs: ImmutableKVS,
    spitz: Optional[SpitzDatabase] = None,
    batch_size: int = 64,
    include_history: bool = True,
) -> SpitzDatabase:
    """Move an existing KVS into a fresh (or provided) Spitz instance.

    Versions are replayed oldest-first in batches (one ledger block
    each) so the migrated Spitz ledger reflects the original update
    order; with ``include_history=False`` only the current state moves
    (cheaper, but pre-migration provenance is lost — the trade-off
    Section 4 asks deployers to weigh).
    """
    spitz = spitz if spitz is not None else SpitzDatabase()
    if include_history:
        versions: List[Tuple[int, bytes, bytes]] = []
        for key, _encoded in kvs.primary.items():
            for timestamp, value in kvs.history(key):
                versions.append((timestamp, key, value))
        versions.sort()
        batch = {}
        for _timestamp, key, value in versions:
            if key in batch:
                # Two versions of one key must land in different
                # blocks or the earlier one would be lost.
                spitz.put_batch(batch)
                batch = {}
            batch[key] = value
            if len(batch) >= batch_size:
                spitz.put_batch(batch)
                batch = {}
        if batch:
            spitz.put_batch(batch)
    else:
        batch = {}
        for key, encoded in kvs.primary.items():
            cell = kvs.cells.get_by_encoded(encoded)
            if cell is None:
                continue
            batch[key] = cell.value
            if len(batch) >= batch_size:
                spitz.put_batch(batch)
                batch = {}
        if batch:
            spitz.put_batch(batch)
    return spitz


class IntrusiveVDB:
    """Figure 4 as an object: Spitz with the ledger embedded.

    Exists so the examples/benches can express "the intrusive design"
    symmetrically with :class:`NonIntrusiveVDB`; calls delegate with
    no channel in between, which is the design's whole advantage.
    """

    def __init__(self, spitz: Optional[SpitzDatabase] = None):
        self.db = spitz if spitz is not None else SpitzDatabase()

    def put(self, key: bytes, value: bytes) -> LedgerDigest:
        self.db.put(key, value)
        return self.db.digest()

    def get(self, key: bytes) -> Optional[bytes]:
        return self.db.get(key)

    def get_verified(
        self, key: bytes
    ) -> Tuple[Optional[bytes], LedgerProof, LedgerDigest]:
        value, proof = self.db.get_verified(key)
        return value, proof, self.db.digest()

    def scan(self, low: bytes, high: bytes):
        return self.db.scan(low, high)

    def scan_verified(self, low: bytes, high: bytes):
        entries, proof = self.db.scan_verified(low, high)
        return entries, proof, self.db.digest()

    def digest(self) -> LedgerDigest:
        return self.db.digest()
