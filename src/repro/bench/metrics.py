"""Measurement and reporting plumbing for the figure runners."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List


def measure_ops(operation: Callable[[], None], count: int) -> float:
    """Run ``operation`` ``count`` times; return throughput (ops/s)."""
    start = time.perf_counter()
    for _ in range(count):
        operation()
    elapsed = time.perf_counter() - start
    return count / elapsed if elapsed > 0 else float("inf")


@dataclass
class Series:
    """One line of a figure: system name -> {x: ops/s or KB}."""

    name: str
    points: Dict[int, float] = field(default_factory=dict)

    def add(self, x: int, y: float) -> None:
        self.points[x] = y


@dataclass
class FigureResult:
    """A whole figure: several series over a shared x axis."""

    figure: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)

    def series_named(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        created = Series(name=name)
        self.series.append(created)
        return created

    def xs(self) -> List[int]:
        values = set()
        for series in self.series:
            values.update(series.points)
        return sorted(values)

    def format_table(self) -> str:
        """Paper-style aligned text table."""
        xs = self.xs()
        name_width = max(
            [len(series.name) for series in self.series] + [len(self.x_label)]
        )
        header = self.x_label.ljust(name_width) + "".join(
            f"{x:>12}" for x in xs
        )
        lines = [
            f"== {self.figure}: {self.title} ({self.y_label}) ==",
            header,
            "-" * len(header),
        ]
        for series in self.series:
            row = series.name.ljust(name_width)
            for x in xs:
                value = series.points.get(x)
                row += f"{value:>12.1f}" if value is not None else (
                    " " * 11 + "-"
                )
            lines.append(row)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (x keys become strings for JSON objects)."""
        return {
            "figure": self.figure,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": {
                series.name: {
                    str(x): y for x, y in sorted(series.points.items())
                }
                for series in self.series
            },
        }

    def ratio(self, numerator: str, denominator: str, x: int) -> float:
        """Convenience for shape assertions in tests/EXPERIMENTS.md."""
        top = self.series_named(numerator).points[x]
        bottom = self.series_named(denominator).points[x]
        return top / bottom
