"""Benchmark harness regenerating the paper's figures.

:mod:`repro.bench.harness` holds one runner per figure plus the
ablations DESIGN.md calls out; :mod:`repro.bench.metrics` holds the
measurement/reporting plumbing.  ``python -m repro.bench.harness --figure all``
prints every series; the ``benchmarks/`` pytest suite wraps the same
runners for ``pytest --benchmark-only``.
"""

from repro.bench.harness import (
    fig1_storage,
    fig6_read,
    fig6_write,
    fig7_range,
    fig8_nonintrusive,
)
from repro.bench.metrics import FigureResult, Series

__all__ = [
    "FigureResult",
    "Series",
    "fig1_storage",
    "fig6_read",
    "fig6_write",
    "fig7_range",
    "fig8_nonintrusive",
]
