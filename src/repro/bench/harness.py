"""Figure runners: one per table/figure in the paper's evaluation.

Record counts are scaled down from the paper's 10^4..1.28*10^6 ladder
(DESIGN.md's substitution table): the same *2 geometric spacing,
starting at ``SPITZ_BENCH_SCALE`` (default 250).  Absolute ops/s are
not comparable to the paper's C++ testbed; the *shapes* — who wins, by
what factor, where verification hurts — are, and EXPERIMENTS.md
records them side by side.

Run from the command line::

    python -m repro.bench.harness --figure 6a
    python -m repro.bench.harness --figure all --scale 500
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import time
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Tuple

from repro.baseline.ledger_db import BaselineLedgerDB
from repro.core.client import run_saturation
from repro.core.database import SpitzDatabase
from repro.core.verifier import ClientVerifier, VerifiedWriter
from repro.forkbase.chunker import RollingChunker
from repro.forkbase.store import ForkBase
from repro.integration.nonintrusive import NonIntrusiveVDB
from repro.kvstore.kvs import ImmutableKVS
from repro.bench.metrics import FigureResult
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY, snapshot_delta
from repro.obs.profiler import SamplingProfiler
from repro.obs.timeseries import TelemetryPlane
from repro.workloads.generator import Operation, WorkloadGenerator
from repro.workloads.wiki import WikiWorkload, naive_storage_bytes

DEFAULT_SCALE = int(os.environ.get("SPITZ_BENCH_SCALE", "250"))
#: The paper uses {1,2,4,...,128} x 10^4; we keep the x2 ladder.
LADDER = (1, 2, 4, 8, 16, 32, 64, 128)

#: Measured operations per point (smaller for the quadratic configs).
OPS_DEFAULT = 200
OPS_WRITE = 640
OPS_BASELINE_VERIFY = 30
OPS_SCAN = 60
OPS_BASELINE_VERIFY_SCAN = 8


def sizes_for(scale: int, ladder: Iterable[int] = LADDER) -> List[int]:
    return [scale * step for step in ladder]


def _settle_gc() -> None:
    """Move loaded data out of GC's tracked generations.

    Long-lived caches (chunk store, decode cache) otherwise make every
    young-generation collection scan millions of tuples, distorting
    the measured op costs.  Freezing after the load phase is standard
    practice for cache-heavy CPython services.
    """
    gc.collect()
    gc.freeze()


# ---------------------------------------------------------------------------
# Figure 1 — storage growth with version count
# ---------------------------------------------------------------------------

def fig1_storage(
    versions_list: Iterable[int] = (10, 20, 30, 40, 50, 60),
    chunker: Optional[object] = None,
) -> FigureResult:
    """Naive snapshot storage vs ForkBase dedup over wiki versions."""
    result = FigureResult(
        figure="Figure 1",
        title="Data storage improved by deduplication",
        x_label="#Versions",
        y_label="Storage (KB)",
    )
    naive = result.series_named("Storage")
    forkbase = result.series_named("Storage-ForkBase")
    for versions in versions_list:
        workload = WikiWorkload(seed=7)
        initial = workload.initial_pages()
        edits = workload.edits(versions)
        naive.add(versions, naive_storage_bytes(initial, edits) / 1024)

        store = ForkBase(chunker=chunker or RollingChunker())
        for page, content in initial:
            store.put(page, content)
        store.commit("v1")
        for edit in edits:
            store.put(edit.page, edit.content)
            store.commit(f"v{edit.version}")
        forkbase.add(
            versions, store.stats.physical_bytes / 1024
        )
    return result


# ---------------------------------------------------------------------------
# shared system builders
# ---------------------------------------------------------------------------

def _load_kvs(gen: WorkloadGenerator) -> ImmutableKVS:
    kvs = ImmutableKVS()
    for key, value in gen.records():
        kvs.put(key, value)
    return kvs


#: Ledger block batch for Spitz under benchmark load — the paper's
#: deferred scheme (Section 5.3) batches transactions into blocks.
SPITZ_BLOCK_BATCH = 128


def _load_spitz(
    gen: WorkloadGenerator,
    metrics: Optional[MetricsRegistry] = None,
) -> SpitzDatabase:
    db = SpitzDatabase(block_batch=SPITZ_BLOCK_BATCH, metrics=metrics)
    for key, value in gen.records():
        db.put(key, value)
    db.flush_ledger()
    return db


def _load_baseline(gen: WorkloadGenerator) -> BaselineLedgerDB:
    db = BaselineLedgerDB()
    for key, value in gen.records():
        db.put(key, value)
    return db


def _load_nonintrusive(gen: WorkloadGenerator) -> NonIntrusiveVDB:
    db = NonIntrusiveVDB()
    for key, value in gen.records():
        db.put(key, value)
    return db


# ---------------------------------------------------------------------------
# Figure 6(a) — read-only throughput, single thread
# ---------------------------------------------------------------------------

def fig6_read(
    sizes: Optional[List[int]] = None,
    seed: int = 1,
    metrics: Optional[MetricsRegistry] = None,
) -> FigureResult:
    sizes = sizes if sizes is not None else sizes_for(DEFAULT_SCALE)
    result = FigureResult(
        figure="Figure 6(a)",
        title="Read-only workload, single-thread",
        x_label="#Records",
        y_label="Throughput (ops/s)",
    )
    for n in sizes:
        gen = WorkloadGenerator(n, seed=seed)
        kvs = _load_kvs(gen)
        spitz = _load_spitz(gen, metrics)
        base = _load_baseline(gen)
        _settle_gc()

        read_ops = list(gen.reads(OPS_DEFAULT))
        verify_ops = read_ops[:OPS_BASELINE_VERIFY]
        verifier = ClientVerifier(metrics=metrics)
        verifier.trust(spitz.digest())

        result.series_named("Immutable KVS").add(
            n,
            _throughput_over(
                read_ops, lambda op: kvs.get(op.key), trials=READ_TRIALS
            ),
        )
        result.series_named("Spitz").add(
            n,
            _throughput_over(
                read_ops, lambda op: spitz.get(op.key), trials=READ_TRIALS
            ),
        )
        result.series_named("Spitz-verify").add(
            n,
            _throughput_over(
                read_ops,
                lambda op: _spitz_verified_read(spitz, verifier, op.key),
                trials=READ_TRIALS,
            ),
        )
        result.series_named("Baseline").add(
            n,
            _throughput_over(
                read_ops, lambda op: base.get(op.key), trials=READ_TRIALS
            ),
        )
        baseline_root = base.digest()
        result.series_named("Baseline-verify").add(
            n,
            _throughput_over(
                verify_ops,
                lambda op: _baseline_verified_read(
                    base, baseline_root, op.key
                ),
                trials=READ_TRIALS,
            ),
        )
    return result


def _spitz_verified_read(
    spitz: SpitzDatabase, verifier: ClientVerifier, key: bytes
):
    value, proof = spitz.get_verified(key)
    verifier.verify_or_raise(proof)
    return value


def _baseline_verified_read(base: BaselineLedgerDB, root, key: bytes):
    value, proof = base.get_verified(key)
    if proof is not None and not proof.verify(root):
        raise AssertionError("baseline proof failed")
    return value


#: Best-of-N trials for *read-path* series.  The measurement windows
#: are tiny (30 verified baseline reads is ~1.5ms) while the load
#: phase dominates runtime, so a single scheduler preemption or GC
#: pause inside one window swings a single-trial ratio by 2x; taking
#: the best of a few back-to-back trials measures the code instead of
#: the machine.  Write-path series keep one trial — re-running write
#: ops would mutate the database under measurement.
READ_TRIALS = 3


def _throughput_over(
    ops: List[Operation],
    action: Callable[[Operation], object],
    trials: int = 1,
) -> float:
    # GC is paused over the timed window (the same policy as timeit):
    # allocation-heavy series — verified reads build proof objects —
    # otherwise pay for collections triggered by whatever ran before
    # the harness, which distorts cross-system ratios.  The window is
    # bounded (a few hundred ops), so deferred collection is cheap.
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        best = 0.0
        for _ in range(max(trials, 1)):
            start = time.perf_counter()
            for op in ops:
                action(op)
            elapsed = time.perf_counter() - start
            best = max(
                best,
                len(ops) / elapsed if elapsed > 0 else float("inf"),
            )
        return best
    finally:
        if was_enabled:
            gc.enable()


# ---------------------------------------------------------------------------
# Figure 6(b) — write-only throughput, single thread
# ---------------------------------------------------------------------------

def fig6_write(
    sizes: Optional[List[int]] = None,
    seed: int = 1,
    metrics: Optional[MetricsRegistry] = None,
) -> FigureResult:
    sizes = sizes if sizes is not None else sizes_for(DEFAULT_SCALE)
    result = FigureResult(
        figure="Figure 6(b)",
        title="Write-only workload, single-thread",
        x_label="#Records",
        y_label="Throughput (ops/s)",
    )
    for n in sizes:
        gen = WorkloadGenerator(n, seed=seed)
        kvs = _load_kvs(gen)
        spitz = _load_spitz(gen, metrics)
        base = _load_baseline(gen)
        _settle_gc()

        writes = list(gen.writes(OPS_WRITE))
        verifier = ClientVerifier(metrics=metrics)
        verifier.trust(spitz.digest())

        result.series_named("Immutable KVS").add(
            n,
            _throughput_over(
                writes, lambda op: kvs.put(op.key, op.value)
            ),
        )
        result.series_named("Spitz").add(
            n,
            _throughput_over(
                writes, lambda op: spitz.put(op.key, op.value)
            ),
        )
        writer = VerifiedWriter(spitz, verifier, batch_size=128)
        result.series_named("Spitz-verify").add(
            n,
            _throughput_over(
                writes,
                lambda op: _spitz_verified_write(writer, op.key, op.value),
            ),
        )
        writer.flush()
        result.series_named("Baseline").add(
            n,
            _throughput_over(
                writes, lambda op: base.put(op.key, op.value)
            ),
        )
        baseline_writes = writes[:OPS_BASELINE_VERIFY]
        result.series_named("Baseline-verify").add(
            n,
            _throughput_over(
                baseline_writes,
                lambda op: _baseline_verified_write(
                    base, op.key, op.value
                ),
            ),
        )
    return result


def _spitz_verified_write(
    writer: VerifiedWriter, key: bytes, value: bytes
):
    """One verified write under the deferred scheme (Section 5.3)."""
    writer.put(key, value)


def _baseline_verified_write(
    base: BaselineLedgerDB, key: bytes, value: bytes
):
    base.put(key, value)
    value_back, proof = base.get_verified(key)
    if proof is None or not proof.verify(base.digest()):
        raise AssertionError("baseline write proof failed")


# ---------------------------------------------------------------------------
# Figure 7 — range queries, 0.1% selectivity
# ---------------------------------------------------------------------------

def fig7_range(
    sizes: Optional[List[int]] = None,
    seed: int = 1,
    selectivity: float = 0.001,
    metrics: Optional[MetricsRegistry] = None,
) -> FigureResult:
    sizes = sizes if sizes is not None else sizes_for(DEFAULT_SCALE)
    result = FigureResult(
        figure="Figure 7",
        title=f"Range queries, selectivity {selectivity:.1%}",
        x_label="#Records",
        y_label="Throughput (ops/s)",
    )
    for n in sizes:
        gen = WorkloadGenerator(n, seed=seed)
        kvs = _load_kvs(gen)
        spitz = _load_spitz(gen, metrics)
        base = _load_baseline(gen)
        _settle_gc()

        scans = list(gen.range_scans(OPS_SCAN, selectivity))
        slow_scans = scans[:OPS_BASELINE_VERIFY_SCAN]
        verifier = ClientVerifier(metrics=metrics)
        verifier.trust(spitz.digest())

        result.series_named("Immutable KVS").add(
            n,
            _throughput_over(
                scans,
                lambda op: kvs.scan(op.key, op.high),
                trials=READ_TRIALS,
            ),
        )
        result.series_named("Spitz").add(
            n,
            _throughput_over(
                scans,
                lambda op: spitz.scan(op.key, op.high),
                trials=READ_TRIALS,
            ),
        )
        result.series_named("Spitz-verify").add(
            n,
            _throughput_over(
                scans,
                lambda op: _spitz_verified_scan(
                    spitz, verifier, op.key, op.high
                ),
                trials=READ_TRIALS,
            ),
        )
        result.series_named("Baseline").add(
            n,
            _throughput_over(
                scans,
                lambda op: base.scan(op.key, op.high),
                trials=READ_TRIALS,
            ),
        )
        baseline_root = base.digest()
        result.series_named("Baseline-verify").add(
            n,
            _throughput_over(
                slow_scans,
                lambda op: _baseline_verified_scan(
                    base, baseline_root, op.key, op.high
                ),
                trials=READ_TRIALS,
            ),
        )
    return result


def _spitz_verified_scan(spitz, verifier, low: bytes, high: bytes):
    _entries, proof = spitz.scan_verified(low, high)
    verifier.verify_or_raise(proof)


def _baseline_verified_scan(base, root, low: bytes, high: bytes):
    _entries, proofs = base.scan_verified(low, high)
    for proof in proofs:
        if not proof.verify(root):
            raise AssertionError("baseline range proof failed")


# ---------------------------------------------------------------------------
# Figure 8 — non-intrusive design vs Spitz
# ---------------------------------------------------------------------------

def fig8_nonintrusive(
    sizes: Optional[List[int]] = None,
    seed: int = 1,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[FigureResult, FigureResult]:
    """Returns (read figure 8a, write figure 8b)."""
    sizes = sizes if sizes is not None else sizes_for(DEFAULT_SCALE)
    read_result = FigureResult(
        figure="Figure 8(a)",
        title="Non-intrusive vs Spitz: read",
        x_label="#Records",
        y_label="Throughput (ops/s)",
    )
    write_result = FigureResult(
        figure="Figure 8(b)",
        title="Non-intrusive vs Spitz: write",
        x_label="#Records",
        y_label="Throughput (ops/s)",
    )
    for n in sizes:
        gen = WorkloadGenerator(n, seed=seed)
        spitz = _load_spitz(gen, metrics)
        noni = _load_nonintrusive(gen)
        _settle_gc()

        reads = list(gen.reads(OPS_DEFAULT))
        writes = list(gen.writes(OPS_WRITE))
        verifier = ClientVerifier(metrics=metrics)
        verifier.trust(spitz.digest())
        ni_verifier = ClientVerifier()
        ni_verifier.trust(noni.digest())

        read_result.series_named("Spitz").add(
            n,
            _throughput_over(
                reads, lambda op: spitz.get(op.key), trials=READ_TRIALS
            ),
        )
        read_result.series_named("Spitz-verify").add(
            n,
            _throughput_over(
                reads,
                lambda op: _spitz_verified_read(spitz, verifier, op.key),
                trials=READ_TRIALS,
            ),
        )
        read_result.series_named("Non-intrusive").add(
            n,
            _throughput_over(
                reads, lambda op: noni.get(op.key), trials=READ_TRIALS
            ),
        )
        read_result.series_named("Non-intrusive-verify").add(
            n,
            _throughput_over(
                reads,
                lambda op: _nonintrusive_verified_read(
                    noni, ni_verifier, op.key
                ),
                trials=READ_TRIALS,
            ),
        )

        write_result.series_named("Spitz").add(
            n,
            _throughput_over(
                writes, lambda op: spitz.put(op.key, op.value)
            ),
        )
        writer = VerifiedWriter(spitz, verifier, batch_size=128)
        write_result.series_named("Spitz-verify").add(
            n,
            _throughput_over(
                writes,
                lambda op: _spitz_verified_write(writer, op.key, op.value),
            ),
        )
        writer.flush()
        write_result.series_named("Non-intrusive").add(
            n,
            _throughput_over(
                writes, lambda op: noni.put(op.key, op.value)
            ),
        )
        write_result.series_named("Non-intrusive-verify").add(
            n,
            _throughput_over(
                writes,
                lambda op: _nonintrusive_verified_write(
                    noni, ni_verifier, op.key, op.value
                ),
            ),
        )
    return read_result, write_result


def _nonintrusive_verified_read(noni, verifier, key: bytes):
    value, proof, digest = noni.get_verified(key)
    verifier.observe(digest)
    verifier.verify_or_raise(proof)
    return value


def _nonintrusive_verified_write(noni, verifier, key: bytes, value: bytes):
    digest = noni.put(key, value)
    verifier.observe(digest)
    proven, proof, _digest = noni.get_verified(key)
    verifier.verify_or_raise(proof)


# ---------------------------------------------------------------------------
# Saturation — admission control under offered load > node capacity
# ---------------------------------------------------------------------------

#: Offered-load ladder: client-thread counts.  The cluster below (2
#: nodes, ~2 ms service time, capacity 16) saturates around 2-4
#: clients, so the upper rungs are firmly past capacity.
SATURATION_CLIENTS = (1, 2, 4, 8, 16)


def fig_saturation(
    clients_ladder: Iterable[int] = SATURATION_CLIENTS,
    ops_per_client: int = 30,
    nodes: int = 2,
    capacity: int = 8,
    deadline: float = 0.04,
    service_delay: float = 0.01,
    metrics: Optional[MetricsRegistry] = None,
) -> FigureResult:
    """Reject/shed/complete rates as offered load passes capacity.

    With 2 nodes at 10ms/request the cluster drains 200 req/s; the top
    of the client ladder offers well past that, so the high end of the
    figure is genuinely saturated.

    Not a paper figure — it exercises the admission point the paper's
    Section 5 architecture implies (one global queue feeding all
    processor nodes).  Each x is an offered-load level (client
    threads); the series decompose every offered request into
    completed / rejected-at-admission / shed-after-deadline, as rates
    per second of wall time.  A healthy admission controller keeps the
    completed rate near node capacity while the overflow moves into
    fast rejections instead of timeout waits.
    """
    result = FigureResult(
        figure="Saturation",
        title=(
            f"Back-pressure: {nodes} nodes, capacity {capacity}, "
            f"deadline {deadline * 1000:.0f}ms"
        ),
        x_label="#Clients",
        y_label="Requests/s",
    )
    completed = result.series_named("Completed")
    rejected = result.series_named("Rejected (overload)")
    shed = result.series_named("Shed (deadline)")
    for clients in clients_ladder:
        report = run_saturation(
            clients=clients,
            ops_per_client=ops_per_client,
            nodes=nodes,
            capacity=capacity,
            deadline=deadline,
            attempts=1,
            service_delay=service_delay,
            metrics=metrics,
        )
        elapsed = max(report.elapsed_seconds, 1e-9)
        completed.add(clients, report.completed / elapsed)
        rejected.add(clients, report.rejected_overload / elapsed)
        shed.add(clients, report.shed / elapsed)
    return result


# ---------------------------------------------------------------------------
# HTTP service plane — sustained RPS and overload over real sockets
# ---------------------------------------------------------------------------

#: Load-process ladder for the HTTP figures.  Each process runs its
#: own interpreter (spawn), so 4 processes is genuinely parallel
#: offered load in a way in-process client threads never are.
HTTP_PROCESSES = (1, 2, 4)
HTTP_OPS_PER_PROCESS = 60
#: Overload rung: one slow node behind a tiny queue, with deadlines
#: tighter than a full queue's drain time, so the top of the ladder
#: shows all three outcomes at once.  Each sequential load process
#: contributes exactly one in-flight request, so queue depth tops out
#: at the process count: with capacity 2 and a 20ms service time, 4
#: processes push depth past capacity (429s) and queued envelopes
#: past the 30ms deadline (503 sheds), while 1 process sails through.
HTTP_OVERLOAD_NODES = 1
HTTP_OVERLOAD_CAPACITY = 2
HTTP_OVERLOAD_SERVICE_DELAY = 0.02
HTTP_OVERLOAD_TIMEOUT = 0.03


def _accounting_imbalance(delta: dict) -> float:
    """Exactly-once check over a counter delta; 0.0 when it holds.

    Every envelope the queue accepted must be accounted for exactly
    once: processed by a node, shed after its deadline, or failed at
    shutdown.  Nonzero means the service plane lost or double-counted
    a request somewhere between the socket and the ledger.
    """
    counters = delta.get("counters", {})
    return float(
        counters.get("queue.submitted", 0)
        - counters.get("node.processed", 0)
        - counters.get("queue.shed", 0)
        - counters.get("cluster.failed_on_stop", 0)
    )


def fig_http(
    processes_ladder: Iterable[int] = HTTP_PROCESSES,
    ops_per_process: int = HTTP_OPS_PER_PROCESS,
    nodes: int = 2,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[FigureResult, FigureResult]:
    """Returns (sustained-throughput figure, overload figure).

    Unlike the in-process figures, both run the full service plane:
    a listening socket, the JSON wire codec, middleware, and separate
    **load-generator OS processes** (no shared GIL), so "sustained
    RPS" and "p99" mean end-to-end over HTTP.

    - **Sustained**: generous queue, retries on; reports RPS and
      pooled p50/p99 latency per offered-load rung.
    - **Overload**: tiny queue, slowed handlers, tight per-request
      deadlines, no retries; decomposes offered load into completed
      (200) / rejected-at-admission (429) / shed-after-deadline (503)
      rates — the socket-edge counterpart of the Saturation figure.

    Both carry an "Accounting imbalance" series asserting the
    exactly-once invariant per rung:
    ``processed + shed + failed_on_stop == submitted`` (always 0).
    """
    from repro.core.client import _SlowHandler
    from repro.serve.loadgen import run_load
    from repro.serve.server import serve_cluster

    registry = metrics if metrics is not None else MetricsRegistry()

    sustained = FigureResult(
        figure="HTTP (a)",
        title=f"HTTP service plane: sustained load, {nodes} nodes",
        x_label="#Processes",
        y_label="Requests/s (RPS) / ms (latency)",
    )
    for processes in processes_ladder:
        service = serve_cluster(
            nodes=nodes,
            queue_capacity=256,
            overload_window=0.05,
            metrics=registry,
        )
        try:
            before = service.cluster.stats()
            report = run_load(
                host="127.0.0.1",
                port=service.port,
                processes=processes,
                ops_per_process=ops_per_process,
                put_ratio=0.8,
                verify_every=10,
                attempts=2,
            )
            delta = snapshot_delta(before, service.cluster.stats())
        finally:
            service.stop()
        sustained.series_named("Sustained RPS").add(processes, report.rps)
        sustained.series_named("p50 latency (ms)").add(
            processes, (report.latency_p50 or 0.0) * 1000
        )
        sustained.series_named("p99 latency (ms)").add(
            processes, (report.latency_p99 or 0.0) * 1000
        )
        sustained.series_named("Accounting imbalance").add(
            processes, _accounting_imbalance(delta)
        )

    overload = FigureResult(
        figure="HTTP (b)",
        title=(
            f"HTTP overload: capacity {HTTP_OVERLOAD_CAPACITY}, "
            f"{HTTP_OVERLOAD_SERVICE_DELAY * 1000:.0f}ms service, "
            f"{HTTP_OVERLOAD_TIMEOUT * 1000:.0f}ms deadline"
        ),
        x_label="#Processes",
        y_label="Requests/s",
    )
    for processes in processes_ladder:
        service = serve_cluster(
            nodes=HTTP_OVERLOAD_NODES,
            queue_capacity=HTTP_OVERLOAD_CAPACITY,
            overload_window=0.0,
            metrics=registry,
        )
        for node in service.cluster.nodes:
            node.handler = _SlowHandler(
                node.handler, HTTP_OVERLOAD_SERVICE_DELAY
            )
        try:
            before = service.cluster.stats()
            report = run_load(
                host="127.0.0.1",
                port=service.port,
                processes=processes,
                ops_per_process=ops_per_process,
                put_ratio=1.0,
                attempts=1,
                timeout=HTTP_OVERLOAD_TIMEOUT,
            )
            delta = snapshot_delta(before, service.cluster.stats())
        finally:
            service.stop()
        elapsed = max(report.elapsed_seconds, 1e-9)
        overload.series_named("Completed (200)").add(
            processes, report.completed / elapsed
        )
        overload.series_named("Rejected (429)").add(
            processes, report.rejected_overload / elapsed
        )
        overload.series_named("Shed (503)").add(
            processes, report.shed / elapsed
        )
        overload.series_named("Accounting imbalance").add(
            processes, _accounting_imbalance(delta)
        )
    return sustained, overload


# ---------------------------------------------------------------------------
# Multiproof — bytes per verified read, batched vs point proofs
# ---------------------------------------------------------------------------

#: Batch sizes measured by the multiproof figure.
MULTIPROOF_KS = (1, 4, 16, 64)
#: Batches sampled per K (averaged).
MULTIPROOF_BATCHES = 6


def fig_multiproof(
    n: Optional[int] = None,
    ks: Iterable[int] = MULTIPROOF_KS,
    batches: int = MULTIPROOF_BATCHES,
    seed: int = 1,
    metrics: Optional[MetricsRegistry] = None,
) -> FigureResult:
    """Bytes-per-verified-read: one multiproof vs K point proofs.

    Runs the full service plane: a cluster is preloaded, served over
    HTTP, and every batch is fetched twice through
    :class:`~repro.serve.client.HttpClusterClient` — once as a
    ``MULTI_GET`` (one :class:`~repro.core.proofs.LedgerMultiProof`)
    and once as K point ``GET``\\ s (K
    :class:`~repro.core.proofs.LedgerProof`\\ s).  **Every** served
    proof is decoded from the wire and verified client-side against
    the served digest; a verification failure fails the figure.

    The multiproof ships each shared upper-level node and the block
    witness once, so its bytes/read falls as K grows while the
    point-proof cost stays flat — the gap is the "Reduction (%)"
    series.
    """
    import random

    from repro.serve.client import HttpClusterClient
    from repro.serve.server import serve_cluster

    n = n if n is not None else DEFAULT_SCALE * 8
    rng = random.Random(seed)
    result = FigureResult(
        figure="Multiproof",
        title=(
            f"Batched multiproofs over HTTP: bytes per verified read, "
            f"{n} records"
        ),
        x_label="K (keys per batch)",
        y_label="Bytes / verified read",
    )
    gen = WorkloadGenerator(n_records=n, seed=seed)
    service = serve_cluster(
        nodes=2, queue_capacity=256, overload_window=0.05, metrics=metrics
    )
    try:
        db = service.cluster.db
        keys = []
        for key, value in gen.records():
            db.put(key, value)
            keys.append(key)
        db.flush_ledger()
        _settle_gc()
        with HttpClusterClient("127.0.0.1", service.port) as client:
            verifier = ClientVerifier(metrics=metrics)
            verifier.trust(db.digest())
            for k in ks:
                multi_bytes = 0
                point_bytes = 0
                for _batch in range(batches):
                    batch = rng.sample(keys, min(k, len(keys)))
                    response = client.get_many(batch, verify=True)
                    if not response.ok:
                        raise RuntimeError(
                            f"MULTI_GET failed: {response.error}"
                        )
                    verifier.observe(response.digest)
                    verifier.verify_or_raise(response.proof)
                    multi_bytes += response.proof.size_bytes
                    for key in batch:
                        point = client.get(key, verify=True)
                        if not point.ok:
                            raise RuntimeError(
                                f"GET failed: {point.error}"
                            )
                        verifier.observe(point.digest)
                        verifier.verify_or_raise(point.proof)
                        point_bytes += point.proof.size_bytes
                reads = batches * k
                result.series_named("Point proofs").add(
                    k, point_bytes / reads
                )
                result.series_named("Multiproof").add(
                    k, multi_bytes / reads
                )
                result.series_named("Reduction (%)").add(
                    k, 100.0 * (1 - multi_bytes / max(point_bytes, 1))
                )
    finally:
        service.stop()
    return result


# ---------------------------------------------------------------------------
# Sharding — write scaling and proof cost vs shard count
# ---------------------------------------------------------------------------

#: Shard-count ladder for the scaling figure.
SHARD_LADDER = (1, 2, 4)
#: Concurrent writer threads offered against every configuration.
SHARD_WRITER_THREADS = 8
SHARD_OPS_PER_THREAD = 40
#: Simulated per-commit durability window, seconds.  Same convention
#: as the saturation/HTTP figures' ``service_delay``: pure-Python
#: compute is GIL-serialized, so threaded in-memory writes cannot
#: show shard parallelism on one interpreter — but a real deployment's
#: commit cost is the WAL fsync, which *does* overlap across shards
#: (independent files, lock released in the kernel).  A commit hook
#: sleeping inside each shard's commit lock models exactly that; the
#: unslowed in-memory series is reported alongside so the figure
#: never hides the GIL-bound number.
SHARD_COMMIT_WINDOW = 0.005


def _sharded_write_throughput(db, threads: int, ops_per_thread: int) -> float:
    """Wall-clock ops/s for ``threads`` concurrent writers."""
    import threading

    barrier = threading.Barrier(threads + 1)

    def writer(tid: int) -> None:
        barrier.wait()
        for i in range(ops_per_thread):
            db.put(b"w:%d:%d" % (tid, i), b"v%d" % i)

    workers = [
        threading.Thread(target=writer, args=(tid,))
        for tid in range(threads)
    ]
    for worker in workers:
        worker.start()
    barrier.wait()
    start = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = max(time.perf_counter() - start, 1e-9)
    return threads * ops_per_thread / elapsed


def fig_shard(
    shard_ladder: Iterable[int] = SHARD_LADDER,
    threads: int = SHARD_WRITER_THREADS,
    ops_per_thread: int = SHARD_OPS_PER_THREAD,
    commit_window: float = SHARD_COMMIT_WINDOW,
    metrics: Optional[MetricsRegistry] = None,
) -> FigureResult:
    """Write scaling across shard counts, plus the proof-cost tax.

    For each shard count the same offered load (``threads`` writer
    threads) runs twice:

    - **commit window** — every shard carries a commit hook sleeping
      ``commit_window`` seconds inside its commit lock (a stand-in for
      the per-shard WAL fsync).  One shard serializes every commit
      through one lock; N shards overlap N windows, so throughput
      scales with the shard count — the property the sharded layout
      exists to buy.
    - **in-memory** — no window; GIL-serialized Python, reported so
      the figure states plainly that compute-bound single-process
      scaling is ~1x.

    After the writes, every configuration (a) pushes one cross-shard
    batch through the 2PC coordinator when there is more than one
    shard, and (b) serves a verified point read whose
    :class:`~repro.shard.proofs.ShardedProof` is checked by a fresh
    :class:`~repro.core.verifier.ClientVerifier` against the pinned
    digest-of-digests — a failed verification fails the figure.  The
    proof-size series shows the membership-branch tax on top of the
    single-ledger proof.
    """
    from repro.shard import ShardedDatabase

    result = FigureResult(
        figure="Shard",
        title=(
            f"Sharded writes: {threads} threads, "
            f"{commit_window * 1000:.0f}ms commit window"
        ),
        x_label="#Shards",
        y_label="Throughput (ops/s) / bytes",
    )
    windowed = result.series_named(
        f"Write ops/s ({commit_window * 1000:.0f}ms commit window)"
    )
    in_memory = result.series_named("Write ops/s (in-memory)")
    speedup = result.series_named("Window speedup vs 1 shard")
    proof_bytes = result.series_named("Verified point proof (bytes)")
    base_rate: Optional[float] = None
    for num_shards in shard_ladder:
        db = ShardedDatabase(num_shards=num_shards, metrics=metrics)
        hook = lambda kind, payload: time.sleep(commit_window)  # noqa: E731
        for shard in db.shards:
            shard.add_commit_hook(hook)
        rate = _sharded_write_throughput(db, threads, ops_per_thread)
        windowed.add(num_shards, rate)
        if base_rate is None:
            base_rate = rate
        speedup.add(num_shards, rate / base_rate)
        for shard in db.shards:
            shard.remove_commit_hook(hook)

        plain = ShardedDatabase(num_shards=num_shards, metrics=metrics)
        in_memory.add(
            num_shards,
            _sharded_write_throughput(plain, threads, ops_per_thread),
        )

        if num_shards > 1:
            # One cross-shard batch through the 2PC coordinator, so the
            # figure also covers the distributed write path.
            db.put_batch(
                {b"2pc:%d" % i: b"x%d" % i for i in range(num_shards * 4)}
            )
        value, proof = db.get_verified(b"w:0:0")
        verifier = ClientVerifier(metrics=metrics)
        verifier.trust(proof.digest)
        verifier.verify_or_raise(proof)
        if value != b"v0":
            raise AssertionError("sharded verified read returned bad value")
        proof_bytes.add(num_shards, float(proof.size_bytes))
    return result


# ---------------------------------------------------------------------------
# Figure obs — telemetry-plane overhead ladder
# ---------------------------------------------------------------------------

#: Interleaved best-of trials for the overhead ladder: each round
#: measures every config once back-to-back, so scheduler noise hits
#: all three configs alike instead of whichever ran last.
OBS_TRIALS = 7

#: Aggressive sampling cadences for the bench — a 50ms telemetry slot
#: and 5ms profiler interval tick 20x/200x per second, far above the
#: production 1s slot, so the measured overhead upper-bounds the real
#: deployment's.
OBS_SLOT_SECONDS = 0.05
OBS_PROFILE_INTERVAL = 0.005


def fig_obs(
    sizes: Optional[List[int]] = None,
    seed: int = 1,
) -> FigureResult:
    """Read-path overhead of the telemetry plane: off / on / on+profiler.

    Three identical databases serve the same read workload: one on a
    disabled registry (no instruments, no ticker), one fully
    instrumented with a live :class:`TelemetryPlane` ticking at
    :data:`OBS_SLOT_SECONDS`, and one with the sampling profiler
    running on top.  The acceptance bar (and the existing budget guard
    in ``test_bench_shapes``) is telemetry-on within 5% of off.

    Owns its registries by construction — the point is comparing
    enabled vs disabled — so unlike the other figures it does not
    record into the harness's shared registry.  Ladder is truncated to
    the first three rungs: overhead ratios are size-insensitive and
    the full ladder would triple the bench's load time for no signal.
    """
    sizes = (sizes if sizes is not None else sizes_for(DEFAULT_SCALE))[:3]
    result = FigureResult(
        figure="Figure obs",
        title="Telemetry plane read-path overhead",
        x_label="#Records",
        y_label="Throughput (ops/s)",
    )
    off_series = result.series_named("Telemetry off")
    on_series = result.series_named("Telemetry on")
    prof_series = result.series_named("Telemetry on + profiler")
    on_overhead = result.series_named("Overhead on vs off (%)")
    prof_overhead = result.series_named("Overhead on+profiler vs off (%)")
    for n in sizes:
        gen = WorkloadGenerator(n, seed=seed)
        db_off = _load_spitz(gen, NULL_REGISTRY)
        registry_on = MetricsRegistry()
        db_on = _load_spitz(gen, registry_on)
        registry_prof = MetricsRegistry()
        db_prof = _load_spitz(gen, registry_prof)
        plane_on = TelemetryPlane(
            registry_on, slot_seconds=OBS_SLOT_SECONDS
        )
        plane_prof = TelemetryPlane(
            registry_prof, slot_seconds=OBS_SLOT_SECONDS
        )
        profiler = SamplingProfiler(interval=OBS_PROFILE_INTERVAL)
        _settle_gc()
        # A 200-op window is ~0.5ms at these rates — small enough for
        # one scheduler preemption to swing a ratio by 10%+.  Repeat
        # the op list so each timed window spans a few milliseconds.
        read_ops = list(gen.reads(OPS_DEFAULT)) * 10
        configs = [
            ("off", lambda op: db_off.get(op.key)),
            ("on", lambda op: db_on.get(op.key)),
            ("profiler", lambda op: db_prof.get(op.key)),
        ]
        best = {label: 0.0 for label, _ in configs}
        plane_on.start()
        plane_prof.start()
        profiler.start()
        try:
            for _ in range(OBS_TRIALS):
                for label, action in configs:
                    best[label] = max(
                        best[label],
                        _throughput_over(read_ops, action, trials=1),
                    )
        finally:
            profiler.stop()
            plane_prof.stop()
            plane_on.stop()
        off_series.add(n, best["off"])
        on_series.add(n, best["on"])
        prof_series.add(n, best["profiler"])
        on_overhead.add(n, 100.0 * (1.0 - best["on"] / best["off"]))
        prof_overhead.add(
            n, 100.0 * (1.0 - best["profiler"] / best["off"])
        )
    return result


# ---------------------------------------------------------------------------
# Verified search — throughput and bytes per verified result at 1M keys
# ---------------------------------------------------------------------------

#: Rows committed into the search plane (250 * 4000 = 1M at default
#: scale).
SEARCH_SCALE_MULT = 4000
#: Verified queries measured per mix.
SEARCH_QUERIES = 30
#: Rows driven through the *end-to-end* write path (per-commit index
#: maintenance is O(touched postings), so this rung stays small and
#: the scale rung uses the bulk loader).
SEARCH_E2E_ROWS = 120


def fig_search(
    n: Optional[int] = None,
    queries: int = SEARCH_QUERIES,
    seed: int = 1,
    metrics: Optional[MetricsRegistry] = None,
) -> FigureResult:
    """Verified-search throughput and proof cost at 1M keys.

    Two rungs:

    - **scale** — a :class:`~repro.workloads.search.SearchWorkload`
      streams ``n`` rows (zipf keyword mix + quantized numeric
      column); the committed index bulk-loads the accumulated postings
      and anchors its manifest in one ledger block.  The measured loop
      answers keyword-equality (zipf-drawn hot/cold terms) and
      numeric-``between`` predicates with full
      :class:`~repro.search.proofs.SearchProof` construction *and*
      client-side verification of every proof — a verification failure
      fails the figure.  Reported per mix: verified queries/s and
      bytes per verified result.
    - **end-to-end** — a small
      :class:`~repro.core.database.SpitzDatabase` with
      ``indexed_columns`` takes row inserts through the normal commit
      pipeline, so the shared registry's ``span.search.maintain``
      histogram (surfaced by the harness's stage breakdown and by
      ``spitz slowest``) attributes the write-path maintenance cost.
    """
    import random

    from repro.core.ledger import SpitzLedger
    from repro.forkbase.chunk_store import ChunkStore
    from repro.search.committed import SEARCH_ROOT_KEY, CommittedSearchIndex
    from repro.search.proofs import SearchPredicate, build_search_proof
    from repro.workloads.search import (
        KEYWORD_COLUMN,
        NUMERIC_COLUMN,
        SearchWorkload,
        StreamingZipf,
    )

    n = n if n is not None else DEFAULT_SCALE * SEARCH_SCALE_MULT
    result = FigureResult(
        figure="Search",
        title=(
            f"Verified search: throughput and proof bytes, {n} keys "
            f"(zipf keyword + numeric range mixes)"
        ),
        x_label="#Keys",
        y_label="Verified queries / s",
    )
    workload = SearchWorkload(rows=n, seed=seed)
    terms, scores = workload.postings()
    chunks = ChunkStore(metrics=metrics)
    ledger = SpitzLedger(chunks, mask_bits=5, metrics=metrics)
    index = CommittedSearchIndex(
        chunks, [KEYWORD_COLUMN, NUMERIC_COLUMN]
    )
    index.bulk_load(KEYWORD_COLUMN, terms)
    index.bulk_load(NUMERIC_COLUMN, scores)
    del terms, scores
    ledger.append_block(
        {SEARCH_ROOT_KEY: index.manifest_bytes()},
        statements=("SEARCH INDEX SEAL",),
    )
    _settle_gc()
    verifier = ClientVerifier(metrics=metrics)
    verifier.trust(ledger.digest())
    term_chooser = StreamingZipf(workload.vocabulary, seed=seed + 2)
    rng = random.Random(seed + 3)
    mixes = [
        (
            "Keyword (zipf)",
            lambda: (
                KEYWORD_COLUMN,
                SearchPredicate.eq(workload.term_of(term_chooser.next())),
            ),
        ),
        (
            "Numeric range",
            lambda: (
                NUMERIC_COLUMN,
                (lambda low: SearchPredicate.between(
                    float(low), float(low + 9)
                ))(rng.randrange(max(workload.score_levels - 9, 1))),
            ),
        ),
    ]
    for label, make_query in mixes:
        proof_bytes = 0
        results = 0
        start = time.perf_counter()
        for _ in range(queries):
            column, predicate = make_query()
            proof = build_search_proof(ledger, index, column, predicate)
            verifier.verify_or_raise(proof)
            proof_bytes += proof.size_bytes
            results += proof.result_count
        elapsed = max(time.perf_counter() - start, 1e-9)
        result.series_named(f"{label}: verified q/s").add(
            n, queries / elapsed
        )
        result.series_named(f"{label}: bytes/verified result").add(
            n, proof_bytes / max(results, 1)
        )
        result.series_named(f"{label}: results/query").add(
            n, results / queries
        )
    # End-to-end rung: normal commit pipeline with per-block index
    # maintenance, so span.search.maintain lands in the registry.
    db = SpitzDatabase(
        metrics=metrics,
        indexed_columns=["docs.term", "docs.score"],
    )
    db.sql(
        "CREATE TABLE docs (id INT, term STR, score INT, "
        "PRIMARY KEY (id))"
    )
    e2e = SearchWorkload(rows=SEARCH_E2E_ROWS, seed=seed + 4)
    start = time.perf_counter()
    for row in e2e.rows():
        db.insert(
            "docs",
            {"id": row.pk, "term": row.term, "score": int(row.score)},
        )
    elapsed = max(time.perf_counter() - start, 1e-9)
    result.series_named("E2E indexed writes/s").add(
        n, SEARCH_E2E_ROWS / elapsed
    )
    ukeys, proof = db.search_verified(
        "docs.term", SearchPredicate.eq(e2e.term_of(0))
    )
    e2e_verifier = ClientVerifier(metrics=metrics)
    e2e_verifier.trust(db.digest())
    e2e_verifier.verify_or_raise(proof)
    result.series_named("E2E hot-term matches").add(n, len(ukeys))
    return result


# ---------------------------------------------------------------------------
# command line
# ---------------------------------------------------------------------------

_RUNNERS = {
    "1": lambda sizes, metrics=None: [fig1_storage()],
    "6a": lambda sizes, metrics=None: [fig6_read(sizes, metrics=metrics)],
    "6b": lambda sizes, metrics=None: [fig6_write(sizes, metrics=metrics)],
    "7": lambda sizes, metrics=None: [fig7_range(sizes, metrics=metrics)],
    "8": lambda sizes, metrics=None: list(
        fig8_nonintrusive(sizes, metrics=metrics)
    ),
    "sat": lambda sizes, metrics=None: [fig_saturation(metrics=metrics)],
    "http": lambda sizes, metrics=None: list(fig_http(metrics=metrics)),
    "multiproof": lambda sizes, metrics=None: [
        fig_multiproof(metrics=metrics)
    ],
    "shard": lambda sizes, metrics=None: [fig_shard(metrics=metrics)],
    "search": lambda sizes, metrics=None: [fig_search(metrics=metrics)],
    # fig_obs compares enabled vs disabled registries, so it owns its
    # registries rather than sharing the harness's.
    "obs": lambda sizes, metrics=None: [fig_obs(sizes)],
}


def _stage_breakdown(delta: dict) -> dict:
    """Per-stage time from a figure's ``span.*`` histogram deltas.

    For each traced stage run during the figure: how many spans, how
    much total time, and its fraction of all stage time — the
    harness-level view of the critical-path attribution the flight
    recorder computes per request.
    """
    stages = {}
    for name, summary in delta.get("histograms", {}).items():
        if not name.startswith("span."):
            continue
        stages[name[len("span."):]] = {
            "count": summary.get("count", 0),
            "total_seconds": summary.get("sum", 0.0),
        }
    total = sum(cell["total_seconds"] for cell in stages.values())
    for cell in stages.values():
        cell["fraction"] = (
            cell["total_seconds"] / total if total > 0 else 0.0
        )
    return stages


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figure", default="all", choices=sorted(_RUNNERS) + ["all"]
    )
    parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    parser.add_argument(
        "--ladder", default=",".join(str(step) for step in LADDER),
        help="comma-separated multipliers of --scale",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write figures + the shared metrics snapshot as JSON",
    )
    args = parser.parse_args(argv)
    ladder = [int(part) for part in args.ladder.split(",")]
    sizes = sizes_for(args.scale, ladder)
    figures = (
        sorted(_RUNNERS) if args.figure == "all" else [args.figure]
    )
    registry = MetricsRegistry()
    entries: List[dict] = []
    for figure in figures:
        before = registry.snapshot()
        results = _RUNNERS[figure](sizes, registry)
        delta = snapshot_delta(before, registry.snapshot())
        stage_breakdown = _stage_breakdown(delta)
        for result in results:
            print(result.format_table())
            print()
            entry = result.to_dict()
            entry["metrics_delta"] = delta
            entry["stage_breakdown"] = stage_breakdown
            entries.append(entry)
    if args.json is not None:
        report = {
            "scale": args.scale,
            "sizes": sizes,
            "figures": entries,
            "metrics": registry.snapshot(),
            "traces": registry.flight.snapshot(),
        }
        Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=True)
        )
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
