"""MVCC + optimistic concurrency control.

"Most existing OLTP systems adopt optimistic concurrency control
(OCC) ... because of its simplicity and high performance"
(Section 1); Section 5.2 lists MVCC-with-OCC (Cicada-style) as the
preferred certifier for Spitz's multi-versioned cells.

Backward validation at commit time: the transaction aborts if any key
it *read* or *writes* has a committed version newer than the version
it observed at its snapshot.  Combined with snapshot reads this yields
serializability (no stale read survives, write-write conflicts follow
first-committer-wins).
"""

from __future__ import annotations

from typing import Any

from repro.errors import TransactionAborted
from repro.txn.manager import Certifier, Transaction
from repro.txn.mvcc import MVCCStore


class OccCertifier(Certifier):
    """Validate read/write sets against the committed store state."""

    def __init__(self, store: MVCCStore):
        self._store = store
        self.validations = 0
        self.conflicts = 0

    def on_read(self, txn: Transaction, key: Any) -> None:
        # Optimistic: reads proceed without coordination.
        return None

    def on_write(self, txn: Transaction, key: Any) -> None:
        # Optimistic: writes buffer without coordination.
        return None

    def certify(self, txn: Transaction, commit_ts: int) -> None:
        self.validations += 1
        for key, observed_ts in txn.read_set.items():
            latest = self._store.latest_commit_ts(key)
            if latest != observed_ts:
                self.conflicts += 1
                raise TransactionAborted(
                    txn.txn_id,
                    f"read conflict on {key!r}: observed version "
                    f"{observed_ts}, committed is now {latest}",
                )
        for key in txn.write_buffer:
            if key in txn.read_set:
                continue  # already validated above
            latest = self._store.latest_commit_ts(key)
            if latest > txn.start_ts:
                self.conflicts += 1
                raise TransactionAborted(
                    txn.txn_id,
                    f"write conflict on {key!r}: committed at {latest} "
                    f"after snapshot {txn.start_ts}",
                )
