"""Hybrid logical clocks (HLC).

The paper's answer to the oracle bottleneck: "we can adopt the hybrid
logic timestamp scheme that allocates timestamps by each individual
node and still has serializability guarantee" (Section 5.2, citing
Kulkarni et al. and CockroachDB).

An HLC timestamp is ``(wall, logical)``: ``wall`` tracks the local
physical clock, ``logical`` breaks ties so causally-related events are
always ordered.  The two rules:

- **local/send event** — ``wall = max(wall, now)``; bump ``logical``
  if ``wall`` did not advance;
- **receive event** — ``wall = max(wall, now, remote.wall)``;
  ``logical`` follows the maximum source.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from functools import total_ordering
from typing import Callable, Optional

#: Width of the packed ``logical`` field in :meth:`HLCTimestamp.as_int`.
LOGICAL_BITS = 20
MAX_LOGICAL = (1 << LOGICAL_BITS) - 1


@total_ordering
@dataclass(frozen=True)
class HLCTimestamp:
    """A hybrid logical timestamp, totally ordered."""

    wall: int
    logical: int

    def _tuple(self):
        return (self.wall, self.logical)

    def __lt__(self, other: "HLCTimestamp") -> bool:
        return self._tuple() < other._tuple()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HLCTimestamp)
            and self._tuple() == other._tuple()
        )

    def __hash__(self) -> int:
        return hash(self._tuple())

    def as_int(self) -> int:
        """Pack into one integer (wall in the high bits).

        ``logical`` must fit its field: a value past ``MAX_LOGICAL``
        would silently spill into the wall bits and corrupt the total
        order.  :class:`HybridLogicalClock` carries the overflow into
        ``wall`` before it can happen; a timestamp constructed by hand
        past the bound is refused here.
        """
        if not 0 <= self.logical <= MAX_LOGICAL:
            raise OverflowError(
                f"logical counter {self.logical} does not fit in "
                f"{LOGICAL_BITS} bits; as_int() would corrupt ordering"
            )
        return (self.wall << LOGICAL_BITS) | self.logical


class HybridLogicalClock:
    """A per-node HLC.

    ``physical_clock`` is injectable so tests can drive skewed or
    frozen clocks; it must return a non-decreasing integer per node
    (the class tolerates decreases by never moving backwards).
    """

    def __init__(self, physical_clock: Optional[Callable[[], int]] = None):
        if physical_clock is None:
            import time

            physical_clock = lambda: int(time.time() * 1000)  # noqa: E731
        self._physical = physical_clock
        self._lock = threading.Lock()
        self._wall = 0
        self._logical = 0

    def _carry_overflow(self) -> None:
        """Keep ``logical`` inside its packed field (under the lock).

        Under a frozen or slow physical clock the logical counter grows
        without bound; past ``MAX_LOGICAL`` it would spill into the
        wall bits of :meth:`HLCTimestamp.as_int` and silently corrupt
        timestamp order.  Borrowing one wall tick instead preserves
        strict monotonicity: ``wall`` only ever moves forward, and the
        physical clock catches up later (``max(physical, wall)`` keeps
        tolerating the artificial lead exactly like ordinary skew).
        """
        if self._logical > MAX_LOGICAL:
            self._wall += 1
            self._logical = 0

    def now(self) -> HLCTimestamp:
        """Timestamp a local or send event."""
        with self._lock:
            physical = self._physical()
            if physical > self._wall:
                self._wall = physical
                self._logical = 0
            else:
                self._logical += 1
                self._carry_overflow()
            return HLCTimestamp(self._wall, self._logical)

    def update(self, remote: HLCTimestamp) -> HLCTimestamp:
        """Timestamp a receive event, merging a remote timestamp."""
        with self._lock:
            physical = self._physical()
            top = max(physical, self._wall, remote.wall)
            if top == self._wall and top == remote.wall:
                self._logical = max(self._logical, remote.logical) + 1
            elif top == self._wall:
                self._logical += 1
            elif top == remote.wall:
                self._logical = remote.logical + 1
            else:
                self._logical = 0
            self._wall = top
            self._carry_overflow()
            return HLCTimestamp(self._wall, self._logical)

    def peek(self) -> HLCTimestamp:
        """Current value without advancing (for monitoring)."""
        with self._lock:
            return HLCTimestamp(self._wall, self._logical)

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()


class HlcOracle:
    """A drop-in, per-node replacement for the timestamp oracle.

    Section 5.2: "we can adopt the hybrid logic timestamp scheme that
    allocates timestamps by each individual node and still has
    serializability guarantee".  This adapter packs HLC stamps into
    integers so the transaction manager (which orders by integer
    timestamps) needs no changes; nodes exchange stamps through
    :meth:`witness` on message receipt, which is what keeps causally
    related transactions ordered without a central service.

    Uniqueness across nodes: the low bits carry a node id, so two
    nodes that produce the same (wall, logical) pair still allocate
    distinct integers.
    """

    NODE_BITS = 10

    def __init__(
        self,
        node_id: int,
        clock: Optional[HybridLogicalClock] = None,
    ):
        if not 0 <= node_id < (1 << self.NODE_BITS):
            raise ValueError(
                f"node_id must fit in {self.NODE_BITS} bits"
            )
        self.node_id = node_id
        self.clock = clock if clock is not None else HybridLogicalClock()
        self.allocated = 0

    def next_timestamp(self) -> int:
        """Allocate a locally-unique, causally-consistent timestamp."""
        stamp = self.clock.now()
        self.allocated += 1
        return (stamp.as_int() << self.NODE_BITS) | self.node_id

    def witness(self, remote_timestamp: int) -> None:
        """Merge a timestamp received from another node.

        Call on every cross-node message (e.g. 2PC prepare/commit);
        afterwards every local allocation exceeds the witnessed one.
        """
        packed = remote_timestamp >> self.NODE_BITS
        self.clock.update(
            HLCTimestamp(
                wall=packed >> LOGICAL_BITS, logical=packed & MAX_LOGICAL
            )
        )

    def advance_to(self, timestamp: int) -> None:
        """Ensure future allocations exceed ``timestamp``.

        Oracle-interface compatibility: crash recovery replays logged
        commits carrying explicit timestamps and must not let the node
        re-issue them.  For an HLC this is exactly a witness — merging
        the replayed stamp pushes every later allocation past it.
        """
        self.witness(timestamp)

    def current(self) -> int:
        """Most recent allocation boundary (monitoring only)."""
        return (self.clock.peek().as_int() << self.NODE_BITS) | self.node_id
