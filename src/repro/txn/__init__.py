"""Concurrency control (paper Section 5.2).

Spitz's cells are multi-versioned, so every certifier here works on top
of the same MVCC version store:

- :mod:`~repro.txn.oracle` — a centralized timestamp oracle
  (Percolator-style), the paper's first ordering option;
- :mod:`~repro.txn.hlc` — hybrid logical clocks, the decentralized
  alternative the paper cites for removing the oracle bottleneck;
- :mod:`~repro.txn.mvcc` — the multi-version value store;
- :mod:`~repro.txn.occ`, :mod:`~repro.txn.two_pl`,
  :mod:`~repro.txn.timestamp_ordering` — MVCC+OCC, MVCC+2PL and
  MVCC+T/O certification;
- :mod:`~repro.txn.manager` — the transaction manager gluing the
  above;
- :mod:`~repro.txn.two_pc` — two-phase commit across processor nodes;
- :mod:`~repro.txn.batch` — deferred (batched) verification.
"""

from repro.txn.batch import DeferredVerifier
from repro.txn.hlc import HLCTimestamp, HlcOracle, HybridLogicalClock
from repro.txn.manager import (
    IsolationLevel,
    Transaction,
    TransactionManager,
)
from repro.txn.mvcc import MVCCStore, Version
from repro.txn.occ import OccCertifier
from repro.txn.oracle import TimestampOracle
from repro.txn.timestamp_ordering import TimestampOrderingCertifier
from repro.txn.two_pc import (
    Participant,
    TwoPhaseCoordinator,
    Vote,
)
from repro.txn.two_pl import LockManager, TwoPhaseLockingCertifier

__all__ = [
    "DeferredVerifier",
    "HLCTimestamp",
    "HlcOracle",
    "HybridLogicalClock",
    "IsolationLevel",
    "LockManager",
    "MVCCStore",
    "OccCertifier",
    "Participant",
    "TimestampOracle",
    "TimestampOrderingCertifier",
    "Transaction",
    "TransactionManager",
    "TwoPhaseCoordinator",
    "TwoPhaseLockingCertifier",
    "Version",
    "Vote",
]
