"""Transaction manager.

Each Spitz processor node carries one transaction manager (Section 5:
"The transaction manager controls the execution of the queries in the
storage").  The manager glues a timestamp source, the MVCC store, and
a pluggable *certifier* (OCC, 2PL or T/O — Section 5.2) behind a
classic begin / read / write / commit interface with selectable
isolation levels (Section 3.3 motivates per-query levels).
"""

from __future__ import annotations

import enum
import threading
from abc import ABC, abstractmethod
from typing import Any, Dict, Optional

from repro.errors import TransactionAborted, TransactionStateError
from repro.txn.mvcc import MVCCStore, Version
from repro.txn.oracle import TimestampOracle


class IsolationLevel(enum.Enum):
    """Isolation levels the manager supports.

    Section 3.3's e-commerce example: purchases need SERIALIZABLE,
    stock-level dashboards are fine with READ_COMMITTED, and snapshot
    reads serve consistent analytics without blocking writers.
    """

    READ_COMMITTED = "read_committed"
    SNAPSHOT = "snapshot"
    SERIALIZABLE = "serializable"


class TxnState(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Certifier(ABC):
    """Pluggable concurrency-control strategy."""

    @abstractmethod
    def on_read(self, txn: "Transaction", key: Any) -> None:
        """Hook before a read; may raise :class:`TransactionAborted`."""

    @abstractmethod
    def on_write(self, txn: "Transaction", key: Any) -> None:
        """Hook before buffering a write; may raise."""

    @abstractmethod
    def certify(self, txn: "Transaction", commit_ts: int) -> None:
        """Validate at commit; raise :class:`TransactionAborted` to veto."""

    def on_finish(self, txn: "Transaction") -> None:
        """Hook after commit or abort (release locks, ...)."""


class Transaction:
    """One transaction: buffered writes, tracked reads, 2-phase commit.

    Obtain instances from :meth:`TransactionManager.begin`; do not
    construct directly.
    """

    def __init__(
        self,
        manager: "TransactionManager",
        txn_id: int,
        start_ts: int,
        isolation: IsolationLevel,
    ):
        self._manager = manager
        self.txn_id = txn_id
        self.start_ts = start_ts
        self.isolation = isolation
        self.state = TxnState.ACTIVE
        # key -> commit_ts of the version observed (0 = none existed)
        self.read_set: Dict[Any, int] = {}
        self.write_buffer: Dict[Any, Any] = {}
        self.commit_ts: Optional[int] = None

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    # -- operations --------------------------------------------------------

    def read(self, key: Any) -> Optional[Any]:
        """Read ``key`` under this transaction's isolation level.

        Returns None for absent or deleted keys.  Own writes are
        visible (read-your-writes).
        """
        self._require_active()
        if key in self.write_buffer:
            value = self.write_buffer[key]
            return None if value == Version.TOMBSTONE else value
        self._manager.certifier.on_read(self, key)
        if self.isolation is IsolationLevel.READ_COMMITTED:
            version = self._manager.store.read_latest(key)
        else:
            version = self._manager.store.read(key, self.start_ts)
        self.read_set[key] = version.commit_ts if version else 0
        if version is None or version.is_tombstone:
            return None
        return version.value

    def write(self, key: Any, value: Any) -> None:
        """Buffer a write; visible to others only after commit."""
        self._require_active()
        self._manager.certifier.on_write(self, key)
        self.write_buffer[key] = value

    def delete(self, key: Any) -> None:
        """Buffer a logical delete (tombstone)."""
        self.write(key, Version.TOMBSTONE)

    # -- completion --------------------------------------------------------

    def commit(self) -> int:
        """Certify and install the write set; return the commit timestamp.

        Raises :class:`TransactionAborted` when certification fails;
        the transaction is then aborted and must be retried by the
        caller.
        """
        self._require_active()
        manager = self._manager
        with manager.commit_lock:
            commit_ts = manager.oracle.next_timestamp()
            try:
                manager.certifier.certify(self, commit_ts)
            except TransactionAborted:
                self.state = TxnState.ABORTED
                manager.aborted += 1
                manager.certifier.on_finish(self)
                raise
            if self.write_buffer:
                manager.store.install(
                    self.write_buffer, commit_ts, self.txn_id
                )
            self.commit_ts = commit_ts
            self.state = TxnState.COMMITTED
            manager.committed += 1
            manager.certifier.on_finish(self)
            manager.notify_commit(self)
            return commit_ts

    def abort(self) -> None:
        """Discard buffered writes and release resources."""
        if self.state is not TxnState.ACTIVE:
            return
        self.state = TxnState.ABORTED
        self._manager.aborted += 1
        self._manager.certifier.on_finish(self)

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is None and self.state is TxnState.ACTIVE:
            self.commit()
        elif self.state is TxnState.ACTIVE:
            self.abort()
        return False


class TransactionManager:
    """Factory and coordination point for transactions on one node."""

    def __init__(
        self,
        store: Optional[MVCCStore] = None,
        oracle: Optional[TimestampOracle] = None,
        certifier: Optional[Certifier] = None,
        default_isolation: IsolationLevel = IsolationLevel.SERIALIZABLE,
    ):
        from repro.txn.occ import OccCertifier  # default; avoids cycle

        self.store = store if store is not None else MVCCStore()
        self.oracle = oracle if oracle is not None else TimestampOracle()
        self.certifier = certifier if certifier is not None else OccCertifier(
            self.store
        )
        self.default_isolation = default_isolation
        self.commit_lock = threading.RLock()
        self.committed = 0
        self.aborted = 0
        self._commit_listeners = []

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["commit_lock"]  # recreated on restore
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.commit_lock = threading.RLock()

    def begin(
        self, isolation: Optional[IsolationLevel] = None
    ) -> Transaction:
        """Start a transaction at a fresh snapshot timestamp."""
        start_ts = self.oracle.next_timestamp()
        return Transaction(
            manager=self,
            txn_id=start_ts,
            start_ts=start_ts,
            isolation=isolation or self.default_isolation,
        )

    def run(self, work, retries: int = 10, isolation=None):
        """Execute ``work(txn)`` with automatic retry on aborts.

        ``work`` receives an open transaction and returns the result to
        surface; the transaction commits when ``work`` returns.  After
        ``retries`` consecutive aborts the last
        :class:`TransactionAborted` propagates.
        """
        last_error: Optional[TransactionAborted] = None
        for _attempt in range(retries):
            txn = self.begin(isolation)
            try:
                result = work(txn)
                txn.commit()
                return result
            except TransactionAborted as error:
                last_error = error
                continue
        assert last_error is not None
        raise last_error

    def add_commit_listener(self, listener) -> None:
        """Register ``listener(txn)`` to run after every commit.

        Spitz's auditor uses this to feed committed write sets into the
        ledger.
        """
        self._commit_listeners.append(listener)

    def notify_commit(self, txn: Transaction) -> None:
        for listener in self._commit_listeners:
            listener(txn)

    @property
    def abort_rate(self) -> float:
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0
