"""Centralized timestamp oracle.

"One approach to achieving serializability is to rely on a global
timestamp service, like Timestamp Oracle [Percolator], to allocate the
timestamps upon a transaction starts and commits" (Section 5.2).  The
paper also notes the oracle can become a bottleneck; the batched lease
below is Percolator's mitigation, and :mod:`repro.txn.hlc` is the
decentralized alternative.
"""

from __future__ import annotations

import threading


class TimestampOracle:
    """Strictly monotonic timestamp allocation.

    ``lease_size`` timestamps are reserved per internal refill, so the
    lock is touched once per batch rather than once per request — the
    trick Percolator uses to serve millions of allocations per second.
    """

    def __init__(self, lease_size: int = 1024):
        if lease_size < 1:
            raise ValueError("lease_size must be positive")
        self._lease_size = lease_size
        self._lock = threading.Lock()
        self._next = 1
        self._lease_end = 1  # exclusive
        self.allocated = 0
        self.lease_refills = 0

    def next_timestamp(self) -> int:
        """Allocate one timestamp, unique and strictly increasing."""
        with self._lock:
            if self._next >= self._lease_end:
                self._lease_end = self._next + self._lease_size
                self.lease_refills += 1
            timestamp = self._next
            self._next += 1
            self.allocated += 1
            return timestamp

    def current(self) -> int:
        """Highest timestamp allocated so far (0 if none)."""
        with self._lock:
            return self._next - 1

    def advance_to(self, timestamp: int) -> None:
        """Ensure future allocations exceed ``timestamp``.

        Used by crash recovery after replaying logged commits that
        carry explicit timestamps: the oracle must not re-issue them.
        """
        with self._lock:
            if timestamp >= self._next:
                self._next = timestamp + 1
                self._lease_end = max(self._lease_end, self._next)

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_lock"]  # recreated on restore
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
