"""Deferred (batched) verification.

"To improve verification throughput, we use a deferred scheme, which
means the transactions are verified asynchronously in batch"
(Section 5.3).  The queue below accumulates verification closures and
flushes them when the batch fills (or on demand); the Figure-6
``*-verify`` runs use batch size 1 (online), and the
``bench_ablation_deferred`` sweep shows the throughput effect of
larger batches.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.errors import TamperDetectedError

#: A pending check: (label, zero-argument callable returning bool).
Check = Tuple[str, Callable[[], bool]]


class DeferredVerifier:
    """Accumulates verification work and runs it in batches.

    ``on_failure`` selects the policy when a check fails during a
    flush: ``"raise"`` (default — surface
    :class:`~repro.errors.TamperDetectedError` immediately) or
    ``"collect"`` (record and keep going, for audit reports).
    """

    def __init__(
        self, batch_size: int = 32, on_failure: str = "raise"
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if on_failure not in ("raise", "collect"):
            raise ValueError("on_failure must be 'raise' or 'collect'")
        self.batch_size = batch_size
        self.on_failure = on_failure
        self._pending: List[Check] = []
        self.verified = 0
        self.failures: List[str] = []
        self.flushes = 0

    def submit(self, label: str, check: Callable[[], bool]) -> None:
        """Queue one verification; auto-flush when the batch fills."""
        self._pending.append((label, check))
        if len(self._pending) >= self.batch_size:
            self.flush()

    @property
    def pending(self) -> int:
        return len(self._pending)

    def flush(self) -> List[str]:
        """Run all queued checks; return labels that failed.

        With ``on_failure="raise"`` the first failure raises
        :class:`TamperDetectedError` (remaining checks stay queued so
        an auditor can inspect them).
        """
        self.flushes += 1
        failed: List[str] = []
        while self._pending:
            label, check = self._pending[0]
            ok = check()
            if not ok:
                # Record the failure *before* any raise so callers
                # (e.g. ClientVerifier's detection counter) can account
                # for it even when the flush aborts here.  In raise
                # mode the failing check stays queued for audit; a
                # re-flush that fails again records again (each failed
                # attempt is its own detection event).
                failed.append(label)
                self.failures.append(label)
                if self.on_failure == "raise":
                    raise TamperDetectedError(
                        f"deferred verification failed: {label}"
                    )
            self._pending.pop(0)
            self.verified += 1
        return failed
