"""MVCC + timestamp ordering (T/O).

Section 5.2 lists "MVCC with timestamp ordering" (Bernstein &
Goodman) among the suitable certifiers.  Transactions are ordered by
their start timestamps; an operation arriving "too late" — e.g. a
read of a key already overwritten by a younger transaction, or a
write under a key already read by a younger transaction — aborts the
transaction immediately rather than at commit.
"""

from __future__ import annotations

import threading
from typing import Any, Dict

from repro.errors import TransactionAborted
from repro.txn.manager import Certifier, Transaction


class TimestampOrderingCertifier(Certifier):
    """Classic T/O scheduler state: per-key max read/write timestamps."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._max_read_ts: Dict[Any, int] = {}
        self._max_write_ts: Dict[Any, int] = {}
        self.early_aborts = 0

    def on_read(self, txn: Transaction, key: Any) -> None:
        with self._lock:
            if txn.start_ts < self._max_write_ts.get(key, 0):
                self.early_aborts += 1
                raise TransactionAborted(
                    txn.txn_id,
                    f"T/O: read of {key!r} at {txn.start_ts} is older than "
                    f"committed write {self._max_write_ts[key]}",
                )
            if txn.start_ts > self._max_read_ts.get(key, 0):
                self._max_read_ts[key] = txn.start_ts

    def on_write(self, txn: Transaction, key: Any) -> None:
        with self._lock:
            if txn.start_ts < self._max_read_ts.get(key, 0):
                self.early_aborts += 1
                raise TransactionAborted(
                    txn.txn_id,
                    f"T/O: write of {key!r} at {txn.start_ts} is older than "
                    f"read {self._max_read_ts[key]}",
                )
            if txn.start_ts < self._max_write_ts.get(key, 0):
                self.early_aborts += 1
                raise TransactionAborted(
                    txn.txn_id,
                    f"T/O: write of {key!r} at {txn.start_ts} is older than "
                    f"write {self._max_write_ts[key]}",
                )

    def certify(self, txn: Transaction, commit_ts: int) -> None:
        # Record this transaction's writes as the newest, under the
        # manager's commit lock (single-writer section).
        with self._lock:
            for key in txn.write_buffer:
                if commit_ts > self._max_write_ts.get(key, 0):
                    self._max_write_ts[key] = commit_ts
