"""Two-phase commit across processor nodes.

"The solution is to add distributed transactions to each node, and
follow the two-phase commit (2PC) protocol to coordinate each
transaction so that transactions committed by different nodes can be
made serializable" (Section 5.2).  Participants are in-process here
(the distribution is simulated, per DESIGN.md), but the protocol —
prepare votes, all-or-nothing outcome, participant failure handling —
is complete and failure-injectable for tests.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Mapping

from repro.errors import TransactionAborted, TwoPhaseCommitError
from repro.txn.manager import (
    IsolationLevel,
    Transaction,
    TransactionManager,
)


class Vote(enum.Enum):
    YES = "yes"
    NO = "no"


class Participant:
    """One 2PC participant wrapping a node-local transaction manager.

    Failure injection: set :attr:`fail_next_prepare` /
    :attr:`fail_next_commit` to make the next corresponding request
    raise, emulating a crashed or partitioned node.
    """

    def __init__(self, name: str, manager: TransactionManager):
        self.name = name
        self.manager = manager
        self._prepared: Dict[str, Transaction] = {}
        self.fail_next_prepare = False
        self.fail_next_commit = False

    def prepare(
        self, global_id: str, writes: Mapping[Any, Any]
    ) -> Vote:
        """Phase 1: stage ``writes`` locally and vote."""
        if self.fail_next_prepare:
            self.fail_next_prepare = False
            raise TwoPhaseCommitError(
                f"participant {self.name} failed during prepare"
            )
        txn = self.manager.begin(IsolationLevel.SERIALIZABLE)
        try:
            for key, value in writes.items():
                # Read first so certification covers conflicting
                # concurrent writers (write skew on this key).
                txn.read(key)
                txn.write(key, value)
        except TransactionAborted:
            txn.abort()
            return Vote.NO
        self._prepared[global_id] = txn
        return Vote.YES

    def commit(self, global_id: str) -> None:
        """Phase 2: commit the staged branch."""
        if self.fail_next_commit:
            self.fail_next_commit = False
            raise TwoPhaseCommitError(
                f"participant {self.name} failed during commit"
            )
        txn = self._prepared.pop(global_id, None)
        if txn is None:
            raise TwoPhaseCommitError(
                f"participant {self.name} has no prepared branch "
                f"{global_id}"
            )
        txn.commit()

    def abort(self, global_id: str) -> None:
        """Phase 2 (abort path): discard the staged branch."""
        txn = self._prepared.pop(global_id, None)
        if txn is not None:
            txn.abort()

    def is_prepared(self, global_id: str) -> bool:
        return global_id in self._prepared


class TwoPhaseCoordinator:
    """Drives prepare/commit across a set of participants.

    The decision log (:attr:`log`) is the coordinator's durable state:
    a recovering participant would consult it to resolve in-doubt
    branches.
    """

    def __init__(self, participants: List[Participant]):
        if not participants:
            raise ValueError("at least one participant required")
        self.participants = {p.name: p for p in participants}
        self.log: List[tuple] = []
        self._next_id = 0

    def execute(
        self, writes_by_participant: Mapping[str, Mapping[Any, Any]]
    ) -> str:
        """Run one global transaction; return its global id.

        Raises :class:`TransactionAborted` when any participant votes
        NO or fails during prepare (all branches are rolled back), and
        :class:`TwoPhaseCommitError` when a participant fails *after*
        the commit decision (the decision stands; the failed branch is
        left for recovery, matching real 2PC semantics).
        """
        self._next_id += 1
        global_id = f"gtx-{self._next_id}"
        involved = []
        for name in writes_by_participant:
            if name not in self.participants:
                raise TwoPhaseCommitError(f"unknown participant {name!r}")
            involved.append(self.participants[name])

        # Phase 1: prepare.
        votes: Dict[str, Vote] = {}
        try:
            for participant in involved:
                votes[participant.name] = participant.prepare(
                    global_id, writes_by_participant[participant.name]
                )
        except TwoPhaseCommitError:
            votes[participant.name] = Vote.NO  # crashed == NO

        if any(vote is Vote.NO for vote in votes.values()):
            self.log.append((global_id, "abort"))
            for participant in involved:
                participant.abort(global_id)
            raise TransactionAborted(
                self._next_id,
                f"2PC abort: votes {sorted(votes.items())}",
            )

        # Phase 2: commit (decision is logged first — presumed commit).
        self.log.append((global_id, "commit"))
        failures: List[str] = []
        for participant in involved:
            try:
                participant.commit(global_id)
            except TwoPhaseCommitError:
                failures.append(participant.name)
        if failures:
            raise TwoPhaseCommitError(
                f"committed globally but participants {failures} must "
                f"recover branch {global_id}"
            )
        return global_id

    def recover(self, participant: Participant) -> int:
        """Replay logged decisions for a participant's in-doubt branches.

        Returns the number of branches resolved.
        """
        resolved = 0
        for global_id, decision in self.log:
            if participant.is_prepared(global_id):
                if decision == "commit":
                    participant.commit(global_id)
                else:
                    participant.abort(global_id)
                resolved += 1
        return resolved
