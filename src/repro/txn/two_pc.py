"""Two-phase commit across processor nodes.

"The solution is to add distributed transactions to each node, and
follow the two-phase commit (2PC) protocol to coordinate each
transaction so that transactions committed by different nodes can be
made serializable" (Section 5.2).  Participants are in-process here
(the distribution is simulated, per DESIGN.md), but the protocol —
prepare votes, all-or-nothing outcome, participant failure handling —
is complete and failure-injectable for tests.

Causal ordering (Section 5.2's HLC scheme): every prepare/commit
message can carry the coordinator's packed HLC timestamp, and every
vote/ack carries the participant's.  Both sides :meth:`~repro.txn.hlc.
HlcOracle.witness` what they receive, so a commit observed on one
shard pushes every other involved shard's next allocation strictly
past it — no central oracle required.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import TransactionAborted, TwoPhaseCommitError
from repro.txn.manager import (
    IsolationLevel,
    Transaction,
    TransactionManager,
)


class Vote(enum.Enum):
    YES = "yes"
    NO = "no"


def _witnessing_oracle(candidate: Any) -> Optional[Any]:
    """Return ``candidate`` if it can witness remote timestamps."""
    if candidate is not None and callable(getattr(candidate, "witness", None)):
        return candidate
    return None


class Participant:
    """One 2PC participant wrapping a node-local transaction manager.

    Failure injection: set :attr:`fail_next_prepare` /
    :attr:`fail_next_commit` to make the next corresponding request
    raise, emulating a crashed or partitioned node.

    When the manager allocates from an :class:`~repro.txn.hlc.HlcOracle`
    (or one is passed explicitly), timestamps carried on incoming
    prepare/commit messages are witnessed, and outgoing votes/acks carry
    this node's stamp back (:meth:`send_timestamp`).
    """

    def __init__(
        self,
        name: str,
        manager: TransactionManager,
        oracle: Optional[Any] = None,
    ):
        self.name = name
        self.manager = manager
        self.oracle = _witnessing_oracle(
            oracle if oracle is not None else getattr(manager, "oracle", None)
        )
        self._lock = threading.Lock()
        self._prepared: Dict[str, Transaction] = {}
        self.fail_next_prepare = False
        self.fail_next_commit = False
        #: Stale branches discarded because a coordinator re-prepared
        #: the same global id (coordinator retry after a lost vote).
        self.duplicates_aborted = 0

    def _witness(self, timestamp: Optional[int]) -> None:
        if timestamp is not None and self.oracle is not None:
            self.oracle.witness(timestamp)

    def send_timestamp(self) -> Optional[int]:
        """Stamp for an outgoing vote/ack message (None without HLC)."""
        if self.oracle is not None and callable(
            getattr(self.oracle, "current", None)
        ):
            return self.oracle.current()
        return None

    def prepare(
        self,
        global_id: str,
        writes: Mapping[Any, Any],
        timestamp: Optional[int] = None,
    ) -> Vote:
        """Phase 1: stage ``writes`` locally and vote.

        A duplicate ``global_id`` means the coordinator retried after
        losing our vote: the stale staged branch is aborted first so a
        re-prepare can never strand an earlier transaction.
        """
        self._witness(timestamp)
        if self.fail_next_prepare:
            self.fail_next_prepare = False
            raise TwoPhaseCommitError(
                f"participant {self.name} failed during prepare"
            )
        with self._lock:
            stale = self._prepared.pop(global_id, None)
        if stale is not None:
            stale.abort()
            self.duplicates_aborted += 1
        txn = self.manager.begin(IsolationLevel.SERIALIZABLE)
        try:
            for key, value in writes.items():
                # Read first so certification covers conflicting
                # concurrent writers (write skew on this key).
                txn.read(key)
                txn.write(key, value)
        except TransactionAborted:
            txn.abort()
            return Vote.NO
        with self._lock:
            self._prepared[global_id] = txn
        return Vote.YES

    def commit(
        self, global_id: str, timestamp: Optional[int] = None
    ) -> None:
        """Phase 2: commit the staged branch."""
        self._witness(timestamp)
        if self.fail_next_commit:
            self.fail_next_commit = False
            raise TwoPhaseCommitError(
                f"participant {self.name} failed during commit"
            )
        with self._lock:
            txn = self._prepared.pop(global_id, None)
        if txn is None:
            raise TwoPhaseCommitError(
                f"participant {self.name} has no prepared branch "
                f"{global_id}"
            )
        txn.commit()

    def abort(self, global_id: str) -> None:
        """Phase 2 (abort path): discard the staged branch."""
        with self._lock:
            txn = self._prepared.pop(global_id, None)
        if txn is not None:
            txn.abort()

    def is_prepared(self, global_id: str) -> bool:
        with self._lock:
            return global_id in self._prepared

    def prepared_count(self) -> int:
        """Number of staged (in-doubt) branches — 0 when quiescent."""
        with self._lock:
            return len(self._prepared)


class TwoPhaseCoordinator:
    """Drives prepare/commit across a set of participants.

    The decision log (:attr:`log`) is the coordinator's durable state:
    a recovering participant would consult it to resolve in-doubt
    branches.  Give the coordinator its own
    :class:`~repro.txn.hlc.HlcOracle` to stamp prepare/commit messages;
    participant votes/acks are witnessed back, keeping every involved
    node's clock ahead of every decision it has observed.
    """

    def __init__(
        self,
        participants: List[Participant],
        oracle: Optional[Any] = None,
    ):
        if not participants:
            raise ValueError("at least one participant required")
        self.participants = {p.name: p for p in participants}
        self.oracle = _witnessing_oracle(oracle)
        self.log: List[tuple] = []
        self._lock = threading.Lock()
        self._next_id = 0

    def _send_timestamp(self) -> Optional[int]:
        if self.oracle is not None:
            return self.oracle.next_timestamp()
        return None

    def _witness_reply(self, participant: Participant) -> None:
        if self.oracle is None:
            return
        stamp = participant.send_timestamp()
        if stamp is not None:
            self.oracle.witness(stamp)

    def execute(
        self, writes_by_participant: Mapping[str, Mapping[Any, Any]]
    ) -> str:
        """Run one global transaction; return its global id.

        Raises :class:`TransactionAborted` when any participant votes
        NO or fails during prepare — with *any* exception, not just the
        protocol's own: once prepare crosses a node boundary, timeouts
        and codec errors are the norm, and every already-prepared
        branch must still be rolled back.  Raises
        :class:`TwoPhaseCommitError` when a participant fails *after*
        the commit decision (the decision stands; the failed branch is
        left for recovery, matching real 2PC semantics).
        """
        with self._lock:
            self._next_id += 1
            txn_seq = self._next_id
        global_id = f"gtx-{txn_seq}"
        involved = []
        for name in writes_by_participant:
            if name not in self.participants:
                raise TwoPhaseCommitError(f"unknown participant {name!r}")
            involved.append(self.participants[name])

        # Phase 1: prepare.
        votes: Dict[str, Vote] = {}
        prepare_error: Optional[BaseException] = None
        for participant in involved:
            try:
                votes[participant.name] = participant.prepare(
                    global_id,
                    writes_by_participant[participant.name],
                    timestamp=self._send_timestamp(),
                )
            except Exception as error:  # crashed == NO, whatever the cause
                votes[participant.name] = Vote.NO
                prepare_error = error
                break
            self._witness_reply(participant)

        if any(vote is Vote.NO for vote in votes.values()):
            with self._lock:
                self.log.append((global_id, "abort"))
            for participant in involved:
                participant.abort(global_id)
            raise TransactionAborted(
                txn_seq,
                f"2PC abort: votes {sorted(votes.items())}",
            ) from prepare_error

        # Phase 2: commit (decision is logged first — presumed commit).
        with self._lock:
            self.log.append((global_id, "commit"))
        failures: List[str] = []
        for participant in involved:
            try:
                participant.commit(
                    global_id, timestamp=self._send_timestamp()
                )
            except Exception:  # post-decision failure: leave for recovery
                failures.append(participant.name)
            else:
                self._witness_reply(participant)
        if failures:
            raise TwoPhaseCommitError(
                f"committed globally but participants {failures} must "
                f"recover branch {global_id}"
            )
        return global_id

    def recover(self, participant: Participant) -> int:
        """Replay logged decisions for a participant's in-doubt branches.

        Returns the number of branches resolved.
        """
        with self._lock:
            decisions = list(self.log)
        resolved = 0
        for global_id, decision in decisions:
            if participant.is_prepared(global_id):
                if decision == "commit":
                    participant.commit(
                        global_id, timestamp=self._send_timestamp()
                    )
                else:
                    participant.abort(global_id)
                resolved += 1
        return resolved
