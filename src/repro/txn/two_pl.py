"""MVCC + strict two-phase locking.

Section 5.2 lists "MVCC with 2PL" (Bernstein et al.) among the
suitable certifiers.  Locks are acquired as operations execute
(growing phase) and released only at commit/abort (strict 2PL), which
makes every certified history serializable and recoverable.

Deadlocks are prevented with the *wait-die* priority scheme: an older
transaction (smaller txn id) may wait for a younger lock holder, but a
younger requester dies immediately.  Wait-die needs no cycle
detection and guarantees progress, at the cost of some spurious
aborts — exactly the trade-off the paper's future-work section points
at for write-intensive loads.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Set

from repro.errors import DeadlockError, TransactionAborted
from repro.txn.manager import Certifier, Transaction


class _Lock:
    __slots__ = ("holders", "exclusive")

    def __init__(self) -> None:
        self.holders: Set[int] = set()
        self.exclusive = False


class LockManager:
    """Shared/exclusive locks with wait-die deadlock prevention."""

    def __init__(self, wait_timeout: float = 5.0):
        self._mutex = threading.Condition()
        self._locks: Dict[Any, _Lock] = {}
        self._held: Dict[int, Set[Any]] = {}
        self._wait_timeout = wait_timeout
        self.lock_waits = 0
        self.wait_die_aborts = 0

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_mutex"]  # recreated on restore
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._mutex = threading.Condition()

    def acquire_shared(self, txn_id: int, key: Any) -> None:
        with self._mutex:
            while True:
                lock = self._locks.setdefault(key, _Lock())
                if not lock.exclusive or lock.holders == {txn_id}:
                    lock.holders.add(txn_id)
                    self._held.setdefault(txn_id, set()).add(key)
                    return
                self._wait_or_die(txn_id, lock)

    def acquire_exclusive(self, txn_id: int, key: Any) -> None:
        with self._mutex:
            while True:
                lock = self._locks.setdefault(key, _Lock())
                if not lock.holders or lock.holders == {txn_id}:
                    lock.holders.add(txn_id)
                    lock.exclusive = True
                    self._held.setdefault(txn_id, set()).add(key)
                    return
                self._wait_or_die(txn_id, lock)

    def _wait_or_die(self, txn_id: int, lock: _Lock) -> None:
        # Wait-die: only strictly older transactions are allowed to wait.
        if any(holder < txn_id for holder in lock.holders):
            self.wait_die_aborts += 1
            raise DeadlockError(txn_id)
        self.lock_waits += 1
        if not self._mutex.wait(timeout=self._wait_timeout):
            # Defensive: a vanished holder (crashed thread) would
            # otherwise hang the system.
            raise TransactionAborted(txn_id, "lock wait timeout")

    def release_all(self, txn_id: int) -> None:
        with self._mutex:
            for key in self._held.pop(txn_id, set()):
                lock = self._locks.get(key)
                if lock is None:
                    continue
                lock.holders.discard(txn_id)
                if not lock.holders:
                    del self._locks[key]
                # An exclusive lock has a single holder, so if holders
                # remain the lock was shared and ``exclusive`` is
                # already False.
            self._mutex.notify_all()

    def held_keys(self, txn_id: int) -> Set[Any]:
        with self._mutex:
            return set(self._held.get(txn_id, set()))


class TwoPhaseLockingCertifier(Certifier):
    """Strict 2PL: lock on access, release on finish, no commit check."""

    def __init__(self, lock_manager: LockManager = None):
        self.locks = lock_manager if lock_manager is not None else (
            LockManager()
        )

    def on_read(self, txn: Transaction, key: Any) -> None:
        self.locks.acquire_shared(txn.txn_id, key)

    def on_write(self, txn: Transaction, key: Any) -> None:
        self.locks.acquire_exclusive(txn.txn_id, key)

    def certify(self, txn: Transaction, commit_ts: int) -> None:
        # Locks already guarantee isolation; nothing to validate.
        return None

    def on_finish(self, txn: Transaction) -> None:
        self.locks.release_all(txn.txn_id)
