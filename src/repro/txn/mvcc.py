"""Multi-version value store.

"In our design, cells are multi-versioned.  Therefore, to achieve
serializability guarantee, concurrency control mechanisms based on
MVCC ... are more suitable" (Section 5.2).  This store keeps every
committed version of every key, serves snapshot reads at any
timestamp, and never overwrites — matching the immutability
requirement of Section 1.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Version:
    """One committed version of a key."""

    commit_ts: int
    value: Any
    txn_id: int

    #: Sentinel value marking a logical delete (tombstone).
    TOMBSTONE = "__tombstone__"

    @property
    def is_tombstone(self) -> bool:
        return (
            isinstance(self.value, str) and self.value == Version.TOMBSTONE
        )


class MVCCStore:
    """Versioned key-value storage with snapshot reads."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        # key -> versions sorted by commit_ts ascending
        self._versions: Dict[Any, List[Version]] = {}

    def __getstate__(self):
        # Locks are not picklable; recreate on restore.
        return {"_versions": self._versions}

    def __setstate__(self, state):
        self._versions = state["_versions"]
        self._lock = threading.RLock()

    # -- reads -------------------------------------------------------------

    def read(self, key: Any, snapshot_ts: int) -> Optional[Version]:
        """Latest version with ``commit_ts <= snapshot_ts``.

        Returns None when no such version exists; returns the tombstone
        version itself (callers decide how to surface deletes).
        """
        with self._lock:
            versions = self._versions.get(key)
            if not versions:
                return None
            stamps = [version.commit_ts for version in versions]
            index = bisect.bisect_right(stamps, snapshot_ts) - 1
            if index < 0:
                return None
            return versions[index]

    def read_latest(self, key: Any) -> Optional[Version]:
        """Most recent committed version regardless of snapshot."""
        with self._lock:
            versions = self._versions.get(key)
            return versions[-1] if versions else None

    def latest_commit_ts(self, key: Any) -> int:
        """Commit timestamp of the newest version (0 if none)."""
        version = self.read_latest(key)
        return version.commit_ts if version is not None else 0

    def history(self, key: Any) -> List[Version]:
        """All committed versions of ``key``, oldest first."""
        with self._lock:
            return list(self._versions.get(key, ()))

    def keys(self) -> Iterator[Any]:
        with self._lock:
            return iter(sorted(self._versions.keys()))

    def snapshot_items(self, snapshot_ts: int) -> Iterator[Tuple[Any, Any]]:
        """Live (key, value) pairs visible at ``snapshot_ts``."""
        with self._lock:
            keys = sorted(self._versions.keys())
        for key in keys:
            version = self.read(key, snapshot_ts)
            if version is not None and not version.is_tombstone:
                yield key, version.value

    # -- writes ------------------------------------------------------------

    def install(
        self, writes: Mapping[Any, Any], commit_ts: int, txn_id: int
    ) -> None:
        """Atomically install a transaction's write set at ``commit_ts``.

        Versions must be installed in commit-timestamp order per key;
        violating that indicates a certifier bug, so it raises.
        """
        with self._lock:
            for key, value in writes.items():
                versions = self._versions.setdefault(key, [])
                if versions and versions[-1].commit_ts >= commit_ts:
                    raise ValueError(
                        f"out-of-order install at key {key!r}: "
                        f"{commit_ts} <= {versions[-1].commit_ts}"
                    )
                versions.append(
                    Version(commit_ts=commit_ts, value=value, txn_id=txn_id)
                )

    def delete(self, key: Any, commit_ts: int, txn_id: int) -> None:
        """Install a tombstone (logical delete; history is preserved)."""
        self.install({key: Version.TOMBSTONE}, commit_ts, txn_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)

    def version_count(self) -> int:
        """Total number of stored versions across all keys."""
        with self._lock:
            return sum(len(v) for v in self._versions.values())
