"""The ForkBase facade.

Combines the chunk store, chunker, DAG objects and version manager into
the interface the rest of the library consumes:

- ``put_value`` / ``get_value`` — deduplicated storage of arbitrary
  byte values, returning content addresses;
- ``dataset`` operations — a named, versioned key→value map per branch
  with O(1) historical checkout;
- dedup statistics used by the Figure 1 benchmark.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.crypto.hashing import Digest
from repro.forkbase.chunk_store import ChunkStore, StoreStats
from repro.forkbase.chunker import Chunker, RollingChunker
from repro.forkbase.dag import Blob, MerkleMap
from repro.forkbase.versions import Commit, VersionManager


class ForkBase:
    """Immutable, deduplicated, versioned storage engine."""

    def __init__(self, chunker: Optional[Chunker] = None):
        self.chunks = ChunkStore()
        self.chunker = chunker or RollingChunker()
        self.versions = VersionManager()
        # Working map per branch (the not-yet-committed head state).
        self._working: Dict[str, MerkleMap] = {}

    # -- raw value interface -------------------------------------------

    def put_value(self, data: bytes) -> Digest:
        """Store a value (chunked + deduplicated); return its address."""
        return Blob.write(self.chunks, data, self.chunker).address

    def get_value(self, address: Digest) -> bytes:
        """Fetch a value previously stored with :meth:`put_value`."""
        return Blob(self.chunks, address).read()

    # -- versioned dataset interface -------------------------------------

    def _working_map(self, branch: str) -> MerkleMap:
        if branch not in self._working:
            head = self.versions.head(branch) if branch in (
                self.versions.branches()
            ) else None
            if head is not None:
                self._working[branch] = MerkleMap(self.chunks, head.root)
            else:
                if branch not in self.versions.branches():
                    self.versions.create_branch(branch)
                self._working[branch] = MerkleMap.empty(self.chunks)
        return self._working[branch]

    def put(
        self,
        key: str,
        value: bytes,
        branch: str = VersionManager.DEFAULT_BRANCH,
    ) -> Digest:
        """Bind ``key`` to ``value`` in the branch's working state.

        The value itself is chunk-deduplicated; the map update is
        path-copied, so unchanged subtrees are shared with previous
        states.  Returns the value's content address.
        """
        address = self.put_value(value)
        working = self._working_map(branch)
        self._working[branch] = working.set(key, bytes(address))
        return address

    def get(
        self,
        key: str,
        branch: str = VersionManager.DEFAULT_BRANCH,
    ) -> bytes:
        """Value bound to ``key`` in the branch's working state."""
        working = self._working_map(branch)
        address = working.get(key)  # raises KeyError if absent
        return self.get_value(Digest(address))

    def get_at(self, key: str, commit: Commit) -> bytes:
        """Value bound to ``key`` as of ``commit`` (historical read)."""
        snapshot = MerkleMap(self.chunks, commit.root)
        address = snapshot.get(key)
        return self.get_value(Digest(address))

    def delete(
        self,
        key: str,
        branch: str = VersionManager.DEFAULT_BRANCH,
    ) -> None:
        """Remove ``key`` from the *working state* of ``branch``.

        History is immutable: the key remains readable at every commit
        that contained it.
        """
        working = self._working_map(branch)
        self._working[branch] = working.delete(key)

    def keys(
        self, branch: str = VersionManager.DEFAULT_BRANCH
    ) -> Iterator[str]:
        """Keys in the branch's working state, sorted."""
        for key, _value in self._working_map(branch).items():
            yield key

    def commit(
        self,
        message: str = "",
        branch: str = VersionManager.DEFAULT_BRANCH,
    ) -> Commit:
        """Snapshot the branch's working state as a new commit."""
        working = self._working_map(branch)
        return self.versions.commit(
            root=working.digest(), message=message, branch=branch
        )

    def checkout(self, commit: Commit) -> MerkleMap:
        """Read-only map handle for a historical commit."""
        return MerkleMap(self.chunks, commit.root)

    # -- accounting ------------------------------------------------------

    @property
    def stats(self) -> StoreStats:
        """Deduplication statistics of the underlying chunk store."""
        return self.chunks.stats

    def storage_report(self) -> Dict[str, float]:
        """Summary used by the Figure 1 benchmark."""
        stats = self.chunks.stats
        return {
            "logical_bytes": stats.logical_bytes,
            "physical_bytes": stats.physical_bytes,
            "dedup_ratio": stats.dedup_ratio,
            "unique_chunks": stats.unique_chunks,
        }
