"""ForkBase substrate: immutable, deduplicated, versioned storage.

This package reimplements the parts of ForkBase (Wang et al.,
PVLDB 2018) that Spitz depends on:

- :mod:`~repro.forkbase.chunker` — content-defined chunking for
  deduplication;
- :mod:`~repro.forkbase.chunk_store` — a content-addressed object
  store;
- :mod:`~repro.forkbase.dag` — Merkle-DAG objects (blobs, lists,
  maps);
- :mod:`~repro.forkbase.versions` — git-like commits and branches;
- :mod:`~repro.forkbase.store` — the user-facing facade.
"""

from repro.forkbase.chunk_store import ChunkStore, StoreStats
from repro.forkbase.chunker import Chunker, FixedSizeChunker, RollingChunker
from repro.forkbase.dag import Blob, MerkleList, MerkleMap
from repro.forkbase.store import ForkBase
from repro.forkbase.versions import Commit, VersionManager

__all__ = [
    "Blob",
    "Chunker",
    "ChunkStore",
    "Commit",
    "FixedSizeChunker",
    "ForkBase",
    "MerkleList",
    "MerkleMap",
    "RollingChunker",
    "StoreStats",
    "VersionManager",
]
