"""Git-like version management over the chunk store.

ForkBase tracks every state of a dataset as a *commit*: a small object
naming a root address (usually a :class:`~repro.forkbase.dag.MerkleMap`
root), its parents, and metadata.  Branches are movable names for
commits.  Because roots are content addresses, checking out any commit
is O(1) and historical versions cost only their deltas.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.crypto.hashing import Digest, hash_value
from repro.errors import BranchNotFoundError, CommitNotFoundError

_commit_counter = itertools.count(1)


@dataclass(frozen=True)
class Commit:
    """One immutable version of a dataset."""

    commit_id: Digest
    root: Digest
    parents: Tuple[Digest, ...]
    message: str
    sequence: int

    @staticmethod
    def make(
        root: Digest, parents: Tuple[Digest, ...], message: str
    ) -> "Commit":
        sequence = next(_commit_counter)
        commit_id = hash_value(
            ("commit", bytes(root), tuple(bytes(p) for p in parents),
             message, sequence)
        )
        return Commit(
            commit_id=commit_id,
            root=root,
            parents=parents,
            message=message,
            sequence=sequence,
        )


class VersionManager:
    """Branches and the commit graph.

    The default branch is ``"master"`` (matching ForkBase's docs); it
    exists from construction with no commits.
    """

    DEFAULT_BRANCH = "master"

    def __init__(self) -> None:
        self._commits: Dict[Digest, Commit] = {}
        self._branches: Dict[str, Optional[Digest]] = {
            self.DEFAULT_BRANCH: None
        }

    # -- commits -------------------------------------------------------

    def commit(
        self,
        root: Digest,
        message: str = "",
        branch: str = DEFAULT_BRANCH,
    ) -> Commit:
        """Record ``root`` as the new head of ``branch``."""
        head = self.head(branch)
        parents = (head.commit_id,) if head is not None else ()
        commit = Commit.make(root=root, parents=parents, message=message)
        self._commits[commit.commit_id] = commit
        self._branches[branch] = commit.commit_id
        return commit

    def get(self, commit_id: Digest) -> Commit:
        try:
            return self._commits[commit_id]
        except KeyError:
            raise CommitNotFoundError(commit_id.hex()) from None

    def head(self, branch: str = DEFAULT_BRANCH) -> Optional[Commit]:
        """Latest commit of ``branch`` (None for a fresh branch)."""
        try:
            head_id = self._branches[branch]
        except KeyError:
            raise BranchNotFoundError(branch) from None
        return self._commits[head_id] if head_id is not None else None

    def log(self, branch: str = DEFAULT_BRANCH) -> Iterator[Commit]:
        """Walk first-parent history from the branch head, newest first."""
        commit = self.head(branch)
        while commit is not None:
            yield commit
            commit = (
                self._commits[commit.parents[0]] if commit.parents else None
            )

    def history_roots(self, branch: str = DEFAULT_BRANCH) -> List[Digest]:
        """Root addresses of every version on ``branch``, oldest first."""
        return [commit.root for commit in self.log(branch)][::-1]

    # -- branches ------------------------------------------------------

    def branches(self) -> List[str]:
        return sorted(self._branches)

    def create_branch(self, name: str, from_branch: str = DEFAULT_BRANCH) -> None:
        """Fork ``from_branch`` at its current head into ``name``."""
        head = self.head(from_branch)
        self._branches[name] = head.commit_id if head is not None else None

    def delete_branch(self, name: str) -> None:
        if name == self.DEFAULT_BRANCH:
            raise ValueError("cannot delete the default branch")
        if name not in self._branches:
            raise BranchNotFoundError(name)
        del self._branches[name]

    def merge_base(self, branch_a: str, branch_b: str) -> Optional[Commit]:
        """Nearest common ancestor of two branch heads (first-parent)."""
        ancestors_a = {
            commit.commit_id for commit in self.log(branch_a)
        }
        for commit in self.log(branch_b):
            if commit.commit_id in ancestors_a:
                return commit
        return None

    def __len__(self) -> int:
        return len(self._commits)
