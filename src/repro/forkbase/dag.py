"""Merkle-DAG objects stored in the chunk store.

ForkBase models data as a DAG of content-addressed nodes: equal
subtrees share storage automatically.  Three object kinds cover what
Spitz needs:

- :class:`Blob` — a (possibly large) byte string, chunked for dedup;
- :class:`MerkleList` — an immutable sequence of small values;
- :class:`MerkleMap` — an immutable sorted map with path-copied
  updates, so consecutive versions share unchanged subtrees.

All three are *handles*: they hold a content address plus a reference
to the store, and every mutation returns a new handle.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.crypto.hashing import Digest
from repro.errors import StorageError
from repro.forkbase.chunk_store import ChunkStore
from repro.forkbase.chunker import Chunker, RollingChunker

# Serialized node layout: canonical_encode of a tuple whose first
# element is a kind tag.
_KIND_BLOB_INDEX = "blob-index"
_KIND_LIST = "mlist"
_KIND_MAP_LEAF = "mmap-leaf"
_KIND_MAP_BRANCH = "mmap-branch"

#: Max entries in a MerkleMap leaf / children in a branch before split.
_MAP_FANOUT = 32


def _load(store: ChunkStore, address: Digest) -> tuple:
    """Fetch and decode a DAG node."""
    import pickle  # local import: decode path only

    raw = store.get(address)
    node = pickle.loads(raw)
    if not isinstance(node, tuple) or not node:
        raise StorageError(f"malformed DAG node at {address.hex()[:12]}")
    return node


def _save(store: ChunkStore, node: tuple) -> Digest:
    """Encode and store a DAG node; return its address."""
    import pickle

    return store.put(pickle.dumps(node, protocol=4))


class Blob:
    """A chunked, deduplicated byte string."""

    def __init__(self, store: ChunkStore, address: Digest):
        self._store = store
        self.address = address

    @classmethod
    def write(
        cls,
        store: ChunkStore,
        data: bytes,
        chunker: Optional[Chunker] = None,
    ) -> "Blob":
        """Chunk ``data``, store the chunks, and return a handle."""
        chunker = chunker or RollingChunker()
        addresses: List[Tuple[bytes, int]] = []
        for chunk in chunker.chunks(data):
            addresses.append((bytes(store.put(chunk)), len(chunk)))
        index_address = _save(
            store, (_KIND_BLOB_INDEX, len(data), tuple(addresses))
        )
        return cls(store, index_address)

    def read(self) -> bytes:
        """Reassemble the full byte string."""
        kind, _total, addresses = _load(self._store, self.address)
        if kind != _KIND_BLOB_INDEX:
            raise StorageError(f"expected blob index, found {kind!r}")
        return b"".join(
            self._store.get(Digest(addr)) for addr, _length in addresses
        )

    def __len__(self) -> int:
        _kind, total, _addresses = _load(self._store, self.address)
        return total


class MerkleList:
    """An immutable list of canonical-encodable values."""

    def __init__(self, store: ChunkStore, address: Digest):
        self._store = store
        self.address = address

    @classmethod
    def write(cls, store: ChunkStore, items: Sequence[object]) -> "MerkleList":
        address = _save(store, (_KIND_LIST, tuple(items)))
        return cls(store, address)

    def items(self) -> Tuple[object, ...]:
        kind, items = _load(self._store, self.address)
        if kind != _KIND_LIST:
            raise StorageError(f"expected mlist, found {kind!r}")
        return items

    def __len__(self) -> int:
        return len(self.items())

    def append(self, item: object) -> "MerkleList":
        """Return a new list with ``item`` appended."""
        return MerkleList.write(self._store, self.items() + (item,))


class MerkleMap:
    """An immutable sorted map with structural sharing.

    Keys are strings; values are anything picklable.  Stored as a
    B-tree of fanout :data:`_MAP_FANOUT`: leaves hold sorted
    ``(key, value)`` pairs, branches hold separator keys and child
    addresses.  Updates path-copy the spine, so two versions differing
    in one key share all other subtrees — the storage behaviour
    Figure 1 measures.
    """

    def __init__(self, store: ChunkStore, address: Digest):
        self._store = store
        self.address = address

    # -- construction ------------------------------------------------

    @classmethod
    def empty(cls, store: ChunkStore) -> "MerkleMap":
        address = _save(store, (_KIND_MAP_LEAF, ()))
        return cls(store, address)

    @classmethod
    def from_items(
        cls, store: ChunkStore, items: Sequence[Tuple[str, object]]
    ) -> "MerkleMap":
        """Bulk-build from (key, value) pairs (last write wins)."""
        merged = dict(items)
        pairs = sorted(merged.items())
        return cls(store, _build_subtree(store, pairs))

    # -- reads -------------------------------------------------------

    def get(self, key: str) -> object:
        """Value for ``key``; raises ``KeyError`` if absent."""
        node = _load(self._store, self.address)
        while node[0] == _KIND_MAP_BRANCH:
            _kind, separators, children = node
            child_index = bisect.bisect_right(separators, key)
            node = _load(self._store, Digest(children[child_index]))
        _kind, pairs = node
        keys = [pair[0] for pair in pairs]
        position = bisect.bisect_left(keys, key)
        if position < len(pairs) and pairs[position][0] == key:
            return pairs[position][1]
        raise KeyError(key)

    def get_optional(self, key: str, default: object = None) -> object:
        try:
            return self.get(key)
        except KeyError:
            return default

    def __contains__(self, key: str) -> bool:
        try:
            self.get(key)
            return True
        except KeyError:
            return False

    def items(self) -> Iterator[Tuple[str, object]]:
        """Iterate all pairs in key order."""
        yield from self._iter_node(self.address)

    def _iter_node(self, address: Digest) -> Iterator[Tuple[str, object]]:
        node = _load(self._store, address)
        if node[0] == _KIND_MAP_BRANCH:
            _kind, _separators, children = node
            for child in children:
                yield from self._iter_node(Digest(child))
        else:
            _kind, pairs = node
            yield from pairs

    def __len__(self) -> int:
        return sum(1 for _pair in self.items())

    # -- writes (persistent) ------------------------------------------

    def set(self, key: str, value: object) -> "MerkleMap":
        """Return a new map with ``key`` bound to ``value``."""
        new_root = _set_in_node(self._store, self.address, key, value)
        if isinstance(new_root, list):  # root split
            separators = [entry[0] for entry in new_root[1:]]
            children = tuple(bytes(entry[1]) for entry in new_root)
            address = _save(
                store=self._store,
                node=(_KIND_MAP_BRANCH, tuple(separators), children),
            )
            return MerkleMap(self._store, address)
        return MerkleMap(self._store, new_root)

    def delete(self, key: str) -> "MerkleMap":
        """Return a new map without ``key`` (no-op if absent).

        Underfull nodes are not rebalanced: immutable workloads delete
        rarely and structural invariance is owned by the SIRI indexes,
        not this DAG helper.
        """
        new_root = _delete_in_node(self._store, self.address, key)
        return MerkleMap(self._store, new_root)

    def digest(self) -> Digest:
        """Content digest of the whole map (its root address)."""
        return self.address


def _build_subtree(
    store: ChunkStore, pairs: List[Tuple[str, object]]
) -> Digest:
    if len(pairs) <= _MAP_FANOUT:
        return _save(store, (_KIND_MAP_LEAF, tuple(pairs)))
    # Split into roughly equal groups of at most _MAP_FANOUT leaves,
    # then recurse on the addresses.
    leaves: List[Tuple[str, Digest]] = []
    for start in range(0, len(pairs), _MAP_FANOUT):
        group = pairs[start:start + _MAP_FANOUT]
        leaves.append(
            (group[0][0], _save(store, (_KIND_MAP_LEAF, tuple(group))))
        )
    return _build_branches(store, leaves)


def _build_branches(
    store: ChunkStore, children: List[Tuple[str, Digest]]
) -> Digest:
    while len(children) > 1:
        next_level: List[Tuple[str, Digest]] = []
        for start in range(0, len(children), _MAP_FANOUT):
            group = children[start:start + _MAP_FANOUT]
            separators = tuple(entry[0] for entry in group[1:])
            addresses = tuple(bytes(entry[1]) for entry in group)
            address = _save(
                store, (_KIND_MAP_BRANCH, separators, addresses)
            )
            next_level.append((group[0][0], address))
        children = next_level
    return children[0][1]


def _set_in_node(store: ChunkStore, address: Digest, key: str, value: object):
    """Insert into the subtree at ``address``.

    Returns either the new subtree address (Digest), or — when the node
    split — a list of ``(first_key, address)`` pairs for the parent to
    absorb.
    """
    node = _load(store, address)
    if node[0] == _KIND_MAP_LEAF:
        _kind, pairs = node
        pairs = list(pairs)
        keys = [pair[0] for pair in pairs]
        position = bisect.bisect_left(keys, key)
        if position < len(pairs) and pairs[position][0] == key:
            pairs[position] = (key, value)
        else:
            pairs.insert(position, (key, value))
        if len(pairs) <= _MAP_FANOUT:
            return _save(store, (_KIND_MAP_LEAF, tuple(pairs)))
        middle = len(pairs) // 2
        left = pairs[:middle]
        right = pairs[middle:]
        return [
            (left[0][0], _save(store, (_KIND_MAP_LEAF, tuple(left)))),
            (right[0][0], _save(store, (_KIND_MAP_LEAF, tuple(right)))),
        ]
    _kind, separators, children = node
    separators = list(separators)
    children = [Digest(child) for child in children]
    child_index = bisect.bisect_right(separators, key)
    result = _set_in_node(store, children[child_index], key, value)
    if isinstance(result, list):
        # Child split into several pieces; splice them in.
        new_children = (
            children[:child_index]
            + [piece[1] for piece in result]
            + children[child_index + 1:]
        )
        new_separators = (
            separators[:child_index]
            + [piece[0] for piece in result[1:]]
            + separators[child_index:]
        )
    else:
        children[child_index] = result
        new_children, new_separators = children, separators
    if len(new_children) <= _MAP_FANOUT:
        return _save(
            store,
            (
                _KIND_MAP_BRANCH,
                tuple(new_separators),
                tuple(bytes(child) for child in new_children),
            ),
        )
    # Split this branch in two.
    middle = len(new_children) // 2
    left_children = new_children[:middle]
    right_children = new_children[middle:]
    left_separators = new_separators[:middle - 1]
    right_separators = new_separators[middle:]
    left_first = _first_key(store, left_children[0])
    right_first = new_separators[middle - 1]
    left_address = _save(
        store,
        (
            _KIND_MAP_BRANCH,
            tuple(left_separators),
            tuple(bytes(child) for child in left_children),
        ),
    )
    right_address = _save(
        store,
        (
            _KIND_MAP_BRANCH,
            tuple(right_separators),
            tuple(bytes(child) for child in right_children),
        ),
    )
    return [(left_first, left_address), (right_first, right_address)]


def _first_key(store: ChunkStore, address: Digest) -> str:
    node = _load(store, address)
    while node[0] == _KIND_MAP_BRANCH:
        node = _load(store, Digest(node[2][0]))
    pairs = node[1]
    return pairs[0][0] if pairs else ""


def _delete_in_node(store: ChunkStore, address: Digest, key: str) -> Digest:
    node = _load(store, address)
    if node[0] == _KIND_MAP_LEAF:
        _kind, pairs = node
        filtered = tuple(pair for pair in pairs if pair[0] != key)
        if len(filtered) == len(pairs):
            return address  # untouched subtree: share it
        return _save(store, (_KIND_MAP_LEAF, filtered))
    _kind, separators, children = node
    child_index = bisect.bisect_right(list(separators), key)
    old_child = Digest(children[child_index])
    new_child = _delete_in_node(store, old_child, key)
    if new_child == old_child:
        return address
    new_children = list(children)
    new_children[child_index] = bytes(new_child)
    return _save(store, (_KIND_MAP_BRANCH, separators, tuple(new_children)))
