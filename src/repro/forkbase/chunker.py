"""Content-defined and fixed-size chunking.

ForkBase deduplicates storage by splitting values into chunks whose
boundaries depend on the *content*, not on offsets: a local edit only
changes the chunks it touches, so unmodified regions of a new version
hash to the same addresses and are stored once.  This module provides
the rolling-hash chunker that realizes that property (used by Figure 1's
storage experiment) and a fixed-size chunker used as the ablation
baseline (``bench_ablation_chunking``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, List

# Precomputed 8-bit -> 64-bit mixing table for the buzhash.  Generated
# once from a fixed linear congruential sequence so chunking is fully
# deterministic across runs and platforms.
_MIX_TABLE: List[int] = []
_seed = 0x9E3779B97F4A7C15
for _ in range(256):
    _seed = (_seed * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
    _MIX_TABLE.append(_seed)
del _seed

_MASK64 = 2**64 - 1


class Chunker(ABC):
    """Splits byte strings into chunks."""

    @abstractmethod
    def chunks(self, data: bytes) -> Iterator[bytes]:
        """Yield consecutive chunks whose concatenation equals ``data``."""

    def split(self, data: bytes) -> List[bytes]:
        """Return the chunks as a list (convenience wrapper)."""
        return list(self.chunks(data))


class FixedSizeChunker(Chunker):
    """Split into fixed-size pieces.

    Offers no resilience to insertions: a one-byte insert shifts every
    later boundary and defeats deduplication.  Exists as the ablation
    comparator for :class:`RollingChunker`.
    """

    def __init__(self, chunk_size: int = 4096):
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size

    def chunks(self, data: bytes) -> Iterator[bytes]:
        for offset in range(0, len(data), self.chunk_size):
            yield data[offset:offset + self.chunk_size]


class RollingChunker(Chunker):
    """Content-defined chunking with a buzhash rolling window.

    A boundary is declared after byte ``i`` when the rolling hash of the
    trailing ``window`` bytes has its low ``mask_bits`` bits all zero,
    subject to ``min_size``/``max_size`` clamps.  Expected chunk size is
    ``2**mask_bits`` bytes.
    """

    def __init__(
        self,
        mask_bits: int = 11,
        window: int = 48,
        min_size: int = 256,
        max_size: int = 16384,
    ):
        if not 1 <= mask_bits <= 30:
            raise ValueError("mask_bits must be in 1..30")
        if min_size < window:
            raise ValueError("min_size must be at least the window size")
        if max_size < min_size:
            raise ValueError("max_size must be >= min_size")
        self.mask = (1 << mask_bits) - 1
        self.window = window
        self.min_size = min_size
        self.max_size = max_size

    def chunks(self, data: bytes) -> Iterator[bytes]:
        n = len(data)
        if n == 0:
            return
        start = 0
        while start < n:
            end = self._find_boundary(data, start)
            yield data[start:end]
            start = end

    def _find_boundary(self, data: bytes, start: int) -> int:
        n = len(data)
        remaining = n - start
        if remaining <= self.min_size:
            return n
        window = self.window
        table = _MIX_TABLE
        mask = self.mask
        # Prime the window over the min_size prefix so the first
        # boundary candidate is at start + min_size.
        digest = 0
        warm_from = start + self.min_size - window
        for i in range(warm_from, start + self.min_size):
            digest = (
                ((digest << 1) | (digest >> 63)) ^ table[data[i]]
            ) & _MASK64
        limit = min(n, start + self.max_size)
        for i in range(start + self.min_size, limit):
            if digest & mask == 0:
                return i
            outgoing = data[i - window]
            # The outgoing byte's contribution has been rotated exactly
            # ``window`` times by the time it leaves the window (one
            # rotation per update, including this one), so XORing its
            # table value rotated by ``window mod 64`` cancels it and the
            # digest stays a pure function of the current window content.
            rot = window % 64
            out_mixed = table[outgoing]
            if rot:
                out_rotated = (
                    (out_mixed << rot) | (out_mixed >> (64 - rot))
                ) & _MASK64
            else:
                out_rotated = out_mixed
            digest = (
                (((digest << 1) | (digest >> 63)) & _MASK64)
                ^ out_rotated
                ^ table[data[i]]
            ) & _MASK64
        return limit
