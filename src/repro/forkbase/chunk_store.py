"""Content-addressed chunk store.

Every object in ForkBase — data chunks, Merkle-DAG nodes, SIRI index
nodes, ledger blocks — is stored here under the SHA-256 of its content.
Writing the same content twice stores one copy; that single property is
what makes multi-version storage cheap (Figure 1 of the paper).

The store also keeps the accounting the benchmarks need: logical bytes
written (what a naive snapshot store would hold) versus physical bytes
stored (after deduplication).

Concurrency: every processor node funnels its index and cell writes
through one shared store, so mutations are guarded by locks *striped
by address prefix* (first byte of the content digest).  Two nodes
putting different content proceed in parallel; two nodes racing on the
same content serialize on the same stripe, so the check-then-act in
:meth:`put` can never double-insert, double-count
``unique_chunks``/``physical_bytes``, or lose a refcount.  The stripes
are the first step toward ROADMAP's chunk-store sharding — a sharded
store keeps per-stripe dicts behind these same locks.  Stats live
behind their own single lock (they are touched on every op regardless
of stripe).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.crypto.hashing import Digest, hash_bytes
from repro.errors import ChunkNotFoundError

#: Lock stripes. 16 is plenty for thread-count-scale contention and
#: keeps compact()'s take-all-stripes step cheap.
STRIPE_COUNT = 16


@dataclass
class StoreStats:
    """Deduplication accounting for a :class:`ChunkStore`."""

    puts: int = 0
    unique_chunks: int = 0
    logical_bytes: int = 0
    physical_bytes: int = 0
    gets: int = 0

    @property
    def dedup_ratio(self) -> float:
        """logical/physical bytes; 1.0 means no deduplication."""
        if self.physical_bytes == 0:
            return 1.0
        return self.logical_bytes / self.physical_bytes


@dataclass
class _Entry:
    data: bytes
    refcount: int = 1


class ChunkStore:
    """In-memory content-addressed store with reference counts.

    Reference counts exist so the version manager can *report* how much
    space unreachable versions would free; nothing is ever deleted
    behind an immutable database's back — release only moves bytes into
    the reclaimable pool, and :meth:`compact` (an explicit, logged
    operation) actually drops zero-reference chunks.
    """

    def __init__(self, metrics=None) -> None:
        # Imported here: forkbase must stay importable without obs
        # being initialized first (and obs never imports forkbase).
        from repro.obs.metrics import NULL_REGISTRY

        self._tracer = (
            metrics if metrics is not None else NULL_REGISTRY
        ).tracer
        self._entries: Dict[Digest, _Entry] = {}
        self._stripes: List[threading.Lock] = [
            threading.Lock() for _ in range(STRIPE_COUNT)
        ]
        self._stats_lock = threading.Lock()
        self.stats = StoreStats()
        # Side caches for index layers built on top of the store.
        # Content addressing makes both sound: a digest's decoded form
        # never changes.  ``decode_cache`` holds deserialized index
        # nodes; ``boundary_cache`` holds content-defined-split
        # decisions keyed by entry bytes.  Both trade memory for the
        # hashing/pickling that would otherwise dominate hot paths.
        self.decode_cache: Dict[Digest, object] = {}
        self.boundary_cache: Dict[bytes, bool] = {}

    def _stripe(self, address: Digest) -> threading.Lock:
        return self._stripes[address[0] % STRIPE_COUNT]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: Digest) -> bool:
        return address in self._entries

    def put(self, data: bytes) -> Digest:
        """Store ``data``; return its content address.

        Re-putting existing content bumps the refcount and costs no
        physical bytes.  Safe under concurrent putters: the address's
        stripe lock serializes the exists-check with the insert.

        Tracing: recorded as a ``chunks.put`` child span only inside
        an active trace (``stage_in_trace``) — per-op timing outside a
        trace would make this the single hottest metric site in the
        system (see :meth:`export_metrics`).
        """
        with self._tracer.stage_in_trace("chunks.put"):
            return self._put(data)

    def _put(self, data: bytes) -> Digest:
        address = hash_bytes(data)
        with self._stripe(address):
            entry = self._entries.get(address)
            if entry is not None:
                entry.refcount += 1
                fresh = False
            else:
                self._entries[address] = _Entry(data=data)
                fresh = True
        with self._stats_lock:
            self.stats.puts += 1
            self.stats.logical_bytes += len(data)
            if fresh:
                self.stats.unique_chunks += 1
                self.stats.physical_bytes += len(data)
        return address

    def get(self, address: Digest) -> bytes:
        """Fetch the chunk at ``address``.

        Raises :class:`ChunkNotFoundError` if absent.
        """
        with self._stats_lock:
            self.stats.gets += 1
        entry = self._entries.get(address)
        if entry is None:
            raise ChunkNotFoundError(address.hex())
        return entry.data

    def get_optional(self, address: Digest) -> Optional[bytes]:
        """Fetch the chunk at ``address`` or None if absent."""
        with self._stats_lock:
            self.stats.gets += 1
        entry = self._entries.get(address)
        return entry.data if entry is not None else None

    def refcount(self, address: Digest) -> int:
        """Current reference count (0 if the chunk is unknown)."""
        entry = self._entries.get(address)
        return entry.refcount if entry is not None else 0

    def release(self, address: Digest) -> int:
        """Drop one reference; return the remaining count.

        The chunk's bytes stay resident until :meth:`compact`.
        """
        with self._stripe(address):
            entry = self._entries.get(address)
            if entry is None:
                raise ChunkNotFoundError(address.hex())
            if entry.refcount > 0:
                entry.refcount -= 1
            return entry.refcount

    def reclaimable_bytes(self) -> int:
        """Bytes held by zero-reference chunks."""
        with self._all_stripes():
            return sum(
                len(entry.data)
                for entry in self._entries.values()
                if entry.refcount == 0
            )

    def _all_stripes(self):
        """Acquire every stripe (in index order, so no deadlocks)."""
        return _MultiLock(self._stripes)

    def compact(self) -> int:
        """Physically drop zero-reference chunks; return bytes freed.

        Takes every stripe so no putter can resurrect (or re-insert) a
        chunk while its entry is being dropped.
        """
        with self._all_stripes():
            dead = [
                address
                for address, entry in self._entries.items()
                if entry.refcount == 0
            ]
            freed = 0
            for address in dead:
                freed += len(self._entries[address].data)
                del self._entries[address]
            with self._stats_lock:
                self.stats.unique_chunks -= len(dead)
                self.stats.physical_bytes -= freed
        return freed

    def addresses(self) -> Iterator[Digest]:
        """Iterate over all stored content addresses."""
        return iter(list(self._entries.keys()))

    def export_metrics(self, registry) -> None:
        """Publish dedup accounting into a metrics registry.

        Derived from :class:`StoreStats` at snapshot time rather than
        instrumenting :meth:`put`/:meth:`get` per call — the chunk
        store sits under every index-node write and read, so per-op
        registry traffic here would be the single hottest metric site
        in the system.  ``chunks.dedup_hits`` counts puts whose content
        was already resident (the ForkBase node-reuse figure).
        """
        stats = self.stats
        registry.gauge("chunks.puts").set(stats.puts)
        registry.gauge("chunks.gets").set(stats.gets)
        registry.gauge("chunks.unique").set(stats.unique_chunks)
        registry.gauge("chunks.dedup_hits").set(
            stats.puts - stats.unique_chunks
        )
        registry.gauge("chunks.dedup_hit_rate").set(
            (stats.puts - stats.unique_chunks) / stats.puts
            if stats.puts
            else 0.0
        )
        registry.gauge("chunks.logical_bytes").set(stats.logical_bytes)
        registry.gauge("chunks.physical_bytes").set(stats.physical_bytes)
        registry.gauge("chunks.dedup_ratio").set(stats.dedup_ratio)

    # -- pickling (snapshots capture state, not live locks) ------------

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_stripes"]
        del state["_stats_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._stripes = [threading.Lock() for _ in range(STRIPE_COUNT)]
        self._stats_lock = threading.Lock()


class _MultiLock:
    """Context manager acquiring a list of locks in fixed order."""

    __slots__ = ("_locks",)

    def __init__(self, locks: List[threading.Lock]):
        self._locks = locks

    def __enter__(self) -> "_MultiLock":
        for lock in self._locks:
            lock.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for lock in reversed(self._locks):
            lock.release()
