"""Command-line interface.

A small operational surface over a persisted Spitz database.  Two
on-disk layouts are supported, chosen by what ``DB`` points at:

- **snapshot file** (legacy): every mutating command rewrites the
  whole snapshot — ``python -m repro.cli init mydb.spitz``;
- **durable directory** (WAL + checkpoints): mutations append one
  fsynced record to a write-ahead log; opening runs crash recovery
  (latest checkpoint + log replay + full chain audit) —
  ``python -m repro.cli init mydb.d --durable``.

::

    python -m repro.cli init mydb.d --durable
    python -m repro.cli put mydb.d account:alice 100
    python -m repro.cli get mydb.d account:alice --verify
    python -m repro.cli sql mydb.d "CREATE TABLE t (id INT, PRIMARY KEY (id))"
    python -m repro.cli history mydb.d account:alice
    python -m repro.cli checkpoint mydb.d
    python -m repro.cli recover mydb.d
    python -m repro.cli audit mydb.d
    python -m repro.cli digest mydb.d
    python -m repro.cli stats mydb.d
    python -m repro.cli saturate --clients 8 --capacity 16
    python -m repro.cli trace --ops 50
    python -m repro.cli slowest --ops 50 --limit 3
    python -m repro.cli serve --port 7421 --rate 200 --token secret
    python -m repro.cli serve --port 7421 --shards 4
    python -m repro.cli loadgen --port 7421 --processes 4 --token secret
    python -m repro.cli stats mydb.d --prom
    python -m repro.cli top --port 7421
    python -m repro.cli profile --ops 100 > profile.folded

(Installed as the ``spitz`` console script: ``spitz stats mydb.d``.)

Exit codes: 0 success, 1 operational error, 2 failed verification or
audit findings, 3 **tamper detected** — scripted audits can tell "the
data was modified at rest" apart from "the tool hit an error".
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.core.audit import audit_ledger
from repro.core.client import run_saturation
from repro.core.database import SpitzDatabase
from repro.core.persistence import load_database, save_database
from repro.core.verifier import ClientVerifier
from repro.durability import DurableDatabase, recover
from repro.errors import SpitzError, TamperDetectedError

#: Exit code for detected tampering (vs. 1 for operational errors).
EXIT_TAMPERED = 3


class _Session:
    """One opened database: durable directory or legacy snapshot file."""

    def __init__(self, path: str):
        self._path = path
        target = Path(path)
        if target.is_dir():
            self.durable: Optional[DurableDatabase] = DurableDatabase.open(
                path
            )
            self.db = self.durable.db
        elif target.exists():
            self.durable = None
            self.db = load_database(path)
        else:
            raise SpitzError(
                f"no database at {path}; run 'init {path}' first"
            )

    def commit(self) -> None:
        """Make preceding mutations durable.

        Durable mode already logged them (WAL, fsync-on-commit); the
        legacy mode pays the snapshot rewrite here.
        """
        if self.durable is None:
            save_database(self.db, self._path)

    def close(self) -> None:
        if self.durable is not None:
            self.durable.close()

    def __enter__(self) -> "_Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def cmd_init(args: argparse.Namespace) -> int:
    target = Path(args.db)
    if args.durable:
        if args.index:
            print(
                "error: --index requires a snapshot database; durable "
                "directories rebuild indexes on recovery (enable search "
                "on the serving side with 'serve --index')",
                file=sys.stderr,
            )
            return 1
        if target.exists() and not target.is_dir():
            print(f"{args.db} exists and is not a directory")
            return 1
        if target.is_dir() and any(target.iterdir()) and not args.force:
            print(f"refusing to reuse non-empty {args.db} (use --force)")
            return 1
        with DurableDatabase.open(args.db):
            pass  # creates the directory and the first WAL segment
        print(f"initialized durable database at {args.db}")
        return 0
    if target.exists() and not args.force:
        print(f"refusing to overwrite {args.db} (use --force)")
        return 1
    db = SpitzDatabase(indexed_columns=args.index or None)
    size = save_database(db, args.db)
    indexed = (
        f", search over {', '.join(args.index)}" if args.index else ""
    )
    print(f"initialized {args.db} ({size} bytes{indexed})")
    return 0


def cmd_put(args: argparse.Namespace) -> int:
    with _Session(args.db) as session:
        block = session.db.put(args.key.encode(), args.value.encode())
        session.commit()
        print(f"ok: sealed block #{block.height}")
    return 0


def cmd_get(args: argparse.Namespace) -> int:
    with _Session(args.db) as session:
        db = session.db
        if args.verify:
            value, proof = db.get_verified(args.key.encode())
            verifier = ClientVerifier()
            verifier.trust(db.digest())
            ok = verifier.verify(proof)
            state = "VERIFIED" if ok else "VERIFICATION FAILED"
            rendered = value.decode(errors="replace") if value else "(absent)"
            print(f"{rendered}  [{state}; {len(proof.siri.nodes)} proof nodes]")
            return 0 if ok else 2
        value = db.get(args.key.encode())
        print(value.decode(errors="replace") if value else "(absent)")
    return 0


def cmd_mget(args: argparse.Namespace) -> int:
    with _Session(args.db) as session:
        db = session.db
        keys = [key.encode() for key in args.keys]
        if args.verify:
            values, proof = db.get_many_verified(keys)
            verifier = ClientVerifier()
            verifier.trust(db.digest())
            ok = verifier.verify(proof)
            for key, value in zip(args.keys, values):
                rendered = (
                    value.decode(errors="replace") if value else "(absent)"
                )
                print(f"{key}\t{rendered}")
            state = "VERIFIED" if ok else "VERIFICATION FAILED"
            print(
                f"[{state}; one multiproof, {len(proof.multi.nodes)} "
                f"deduped nodes, {proof.size_bytes} bytes for "
                f"{len(keys)} keys]"
            )
            return 0 if ok else 2
        for key, value in zip(args.keys, db.get_many(keys)):
            rendered = (
                value.decode(errors="replace") if value else "(absent)"
            )
            print(f"{key}\t{rendered}")
    return 0


def cmd_delete(args: argparse.Namespace) -> int:
    with _Session(args.db) as session:
        block = session.db.delete(args.key.encode())
        session.commit()
        print(f"ok: sealed block #{block.height}")
    return 0


def cmd_scan(args: argparse.Namespace) -> int:
    with _Session(args.db) as session:
        for key, value in session.db.scan(
            args.low.encode(), args.high.encode()
        ):
            print(f"{key.decode(errors='replace')}\t"
                  f"{value.decode(errors='replace')}")
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    with _Session(args.db) as session:
        for timestamp, value in session.db.history(args.key.encode()):
            print(f"ts {timestamp}: {value.decode(errors='replace')}")
    return 0


def cmd_sql(args: argparse.Namespace) -> int:
    with _Session(args.db) as session:
        result = session.db.sql(args.statement)
        if isinstance(result, list):
            for row in result:
                print(row)
            print(f"({len(result)} rows)")
        elif isinstance(result, int):
            print(f"({result} rows affected)")
            session.commit()
        else:
            height = getattr(result, "height", "?")
            print(f"ok: sealed block #{height}")
            session.commit()
    return 0


def _print_search_matches(ukeys) -> None:
    """Render matched universal keys as ``column pk @ts`` rows."""
    from repro.core.universal_key import UniversalKey

    for ukey in ukeys:
        try:
            decoded = UniversalKey.decode(bytes(ukey))
            raw = decoded.primary_key
            if len(raw) == 8 and (raw[0] & 0x80):
                # Integer primary keys are offset-shifted 8-byte
                # big-endian (encode_pk); anything else renders as text.
                pk = str(int.from_bytes(raw, "big") - 2**63)
            else:
                pk = raw.decode(errors="replace")
            print(f"{decoded.column}\t{pk}\t@{decoded.timestamp}")
        except (ValueError, UnicodeDecodeError):
            print(bytes(ukey).hex())


def cmd_search(args: argparse.Namespace) -> int:
    """Secondary-index search, local session or remote server.

    ``spitz search DB users.age '>= 10' --verify`` answers from an
    opened database; ``spitz search users.age '>= 10' --port 7421
    --verify`` asks a running ``spitz serve`` over HTTP and verifies
    the returned proof client-side against the served digest.
    """
    from repro.search.proofs import SearchPredicate

    predicate = SearchPredicate.parse(args.predicate)
    if args.port is not None:
        if args.db is not None:
            raise SpitzError(
                "give either a DB path or --port, not both "
                "(remote mode takes COLUMN PREDICATE only)"
            )
        from repro.serve.client import HttpClusterClient

        with HttpClusterClient(
            args.host, args.port, token=args.token
        ) as client:
            response = client.search(
                args.column, predicate, verify=args.verify
            )
        if not response.ok:
            print(f"error: {response.error}", file=sys.stderr)
            return 1
        _print_search_matches(response.result)
        if args.verify:
            verifier = ClientVerifier()
            verifier.trust(response.digest)
            ok = verifier.verify(response.proof)
            state = "VERIFIED" if ok else "VERIFICATION FAILED"
            print(
                f"[{state}; {len(response.result)} matches, "
                f"{response.proof.size_bytes} proof bytes over the wire]"
            )
            return 0 if ok else 2
        print(f"({len(response.result)} matches)")
        return 0
    if args.db is None:
        raise SpitzError(
            "search needs a DB path (or --port for a running server)"
        )
    with _Session(args.db) as session:
        db = session.db
        if args.verify:
            ukeys, proof = db.search_verified(args.column, predicate)
            verifier = ClientVerifier()
            verifier.trust(db.digest())
            ok = verifier.verify(proof)
            _print_search_matches(ukeys)
            state = "VERIFIED" if ok else "VERIFICATION FAILED"
            print(
                f"[{state}; {len(ukeys)} matches, {proof.size_bytes} "
                f"proof bytes incl. completeness evidence]"
            )
            return 0 if ok else 2
        ukeys = db.search(args.column, predicate)
        _print_search_matches(ukeys)
        print(f"({len(ukeys)} matches)")
    return 0


def cmd_digest(args: argparse.Namespace) -> int:
    with _Session(args.db) as session:
        digest = session.db.digest()
        print(f"height: {digest.height}")
        print(f"chain:  {digest.chain_digest.hex()}")
        print(f"root:   {digest.tree_root.hex()}")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    with _Session(args.db) as session:
        findings = audit_ledger(session.db.ledger)
        if findings:
            for finding in findings:
                print(f"FINDING: {finding}")
            return 2
        print(f"clean: {session.db.ledger.height} blocks audited")
    return 0


def _print_snapshot_json(payload: dict) -> None:
    """One serialization path for every stats surface.

    ``spitz stats --json``, ``spitz slowest --json`` and the HTTP
    ``/v1/stats`` endpoint all run their snapshot through
    :func:`repro.serve.codec.to_jsonable`, so a scraper sees the same
    frame no matter which door it knocked on.
    """
    from repro.serve.codec import to_jsonable

    print(json.dumps(to_jsonable(payload), indent=2, sort_keys=True))


def cmd_stats(args: argparse.Namespace) -> int:
    """Print the database's metrics snapshot.

    The same payload a running cluster serves for a
    ``RequestKind.STATS`` request — here it covers whatever the open
    itself did (recovery replay, WAL fsyncs, chunk dedup state), which
    is what an operator inspecting a database at rest cares about.
    ``--json`` emits the machine frame; ``--prom`` the Prometheus
    text rendering (what a running server serves at ``/metrics``);
    the default is a readable table.
    """
    with _Session(args.db) as session:
        snapshot = session.db.metrics_snapshot()
        if getattr(args, "prom", False):
            from repro.obs.exposition import render_prometheus

            print(
                render_prometheus(
                    session.db.metrics.exposition_snapshot()
                ),
                end="",
            )
            return 0
    if args.json:
        _print_snapshot_json(snapshot)
        return 0
    for name, value in sorted(snapshot["counters"].items()):
        print(f"{name:<40} {value}")
    for name, value in sorted(snapshot["gauges"].items()):
        print(f"{name:<40} {value:g}")
    print(f"{'histogram':<40} {'count':>8} {'p50':>12} {'p99':>12}")
    for name, summary in sorted(snapshot["histograms"].items()):
        if not summary.get("count"):
            continue
        print(
            f"{name:<40} {summary['count']:>8} "
            f"{summary['p50']:>12.6f} {summary['p99']:>12.6f}"
        )
    return 0


def cmd_saturate(args: argparse.Namespace) -> int:
    """Drive an in-process cluster past saturation and report as JSON.

    An operator smoke test for the admission-control settings: spins
    up a bounded cluster (no on-disk database involved), hammers it
    with client threads through the retrying
    :class:`~repro.core.client.ClusterClient`, and prints the
    reject/shed/complete split plus queue-wait percentiles.
    """
    report = run_saturation(
        clients=args.clients,
        ops_per_client=args.ops,
        nodes=args.nodes,
        capacity=args.capacity,
        deadline=args.deadline,
        attempts=args.attempts,
        service_delay=args.service_delay,
    )
    payload = report.to_dict()
    payload["counters"] = report.counters
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _drive_traced_cluster(args: argparse.Namespace):
    """Run a small traced workload on an in-process cluster.

    Shared by ``trace`` and ``slowest``: puts, plain gets, verified
    gets, indexed-row inserts with verified searches (so the
    ``search.maintain`` / ``search.prove`` stages show up in the
    critical-path attribution) and one deliberately malformed request,
    so the flight recorder holds ok *and* error traces across request
    kinds.  Returns the cluster's metrics registry (cluster already
    stopped).
    """
    # Imported here: only these subcommands need the control layer.
    from repro.core.node import SpitzCluster
    from repro.core.request_handler import Request, RequestKind

    cluster = SpitzCluster(nodes=args.nodes, indexed_columns=["t.score"])
    cluster.start()
    try:
        cluster.submit(Request(RequestKind.SQL, {
            "text": "CREATE TABLE t (id INT, score INT, PRIMARY KEY (id))"
        }))
        for i in range(args.ops):
            key = f"trace:{i % max(args.ops // 2, 1)}".encode()
            cluster.submit(
                Request(RequestKind.PUT, {"key": key, "value": b"v%d" % i})
            )
            cluster.submit(Request(RequestKind.GET, {"key": key}))
            cluster.submit(
                Request(RequestKind.GET, {"key": key}, verify=True)
            )
            cluster.submit(Request(RequestKind.SQL, {
                "text": (
                    f"INSERT INTO t (id, score) VALUES ({i}, {i % 10})"
                )
            }))
            if i % 5 == 0:
                cluster.submit(Request(
                    RequestKind.SEARCH,
                    {
                        "column": "t.score",
                        "predicate": {"op": "between", "low": 2, "high": 6},
                    },
                    verify=True,
                ))
        # One malformed request so the failure ring is never empty.
        cluster.submit(Request(RequestKind.GET, {"wrong_field": 1}))
    finally:
        cluster.stop()
    return cluster.metrics


def cmd_trace(args: argparse.Namespace) -> int:
    """Print full span trees from a traced in-process workload.

    Each tree shows the request's path — ``client.submit`` →
    ``node.serve`` → ``request.handle`` → storage leaf spans — with
    per-span durations, statuses and attributes.
    """
    metrics = _drive_traced_cluster(args)
    flight = metrics.flight
    if args.json:
        _print_snapshot_json(
            flight.snapshot(slowest=args.limit, failures=args.limit)
        )
        return 0
    traces = (
        flight.failures(args.limit) if args.failures
        else flight.recent(args.limit)
    )
    if not traces:
        print("(no traces retained)")
        return 0
    for trace in traces:
        print(trace.render())
        print()
    return 0


def cmd_slowest(args: argparse.Namespace) -> int:
    """Print the slowest retained traces and the per-request-kind
    critical-path attribution table (fraction of end-to-end time per
    stage, computed from every completed request trace)."""
    metrics = _drive_traced_cluster(args)
    flight = metrics.flight
    if args.json:
        _print_snapshot_json(flight.snapshot(slowest=args.limit))
        return 0
    for trace in flight.slowest(args.limit):
        print(trace.render())
        print()
    print("critical-path attribution (per request kind):")
    print(flight.render_attribution())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a cluster over HTTP until interrupted.

    The service plane in one command: boots an N-node cluster
    (in-memory, or over a durable directory with ``--durable-root``),
    fronts it with the threaded HTTP server — request-id + auth +
    per-client rate-limit middleware, 429/503 shedding at the edge —
    and blocks until Ctrl-C, then prints the serving stats.
    """
    from repro.serve.server import serve_cluster

    service = serve_cluster(
        nodes=args.nodes,
        host=args.host,
        port=args.port,
        queue_capacity=args.capacity if args.capacity > 0 else None,
        durable_root=args.durable_root,
        auth_tokens=args.token or None,
        rate=args.rate,
        burst=args.burst,
        request_timeout=args.request_timeout,
        shards=args.shards,
        indexed_columns=getattr(args, "index", None) or None,
    )
    auth = "token auth" if args.token else "open (no auth)"
    limit = (
        f"{args.rate:g} req/s per client" if args.rate is not None
        else "unlimited"
    )
    layout = f"{args.shards} shards" if args.shards > 1 else "1 ledger"
    print(f"serving on http://{service.address}  "
          f"[{args.nodes} nodes, {layout}, {auth}, rate {limit}]")
    print("endpoints: /healthz /readyz /metrics /v1/stats /v1/digest "
          "POST /v1/request  (Ctrl-C to stop)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    snapshot = service.cluster.stats()
    served = {
        name: value for name, value in snapshot["counters"].items()
        if name.startswith("serve.") or name.startswith("queue.")
    }
    print()
    for name, value in sorted(served.items()):
        print(f"{name:<40} {value}")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running ``spitz serve`` from separate processes.

    Reports sustained RPS, pooled p50/p99 latency and the
    completed / rejected(429) / rate-limited / shed(503) split as
    JSON — the client half of the service-plane bench.
    """
    from repro.serve.loadgen import run_load

    report = run_load(
        host=args.host,
        port=args.port,
        processes=args.processes,
        ops_per_process=args.ops,
        put_ratio=args.put_ratio,
        verify_every=args.verify_every,
        token=args.token,
        attempts=args.attempts,
        timeout=args.timeout,
    )
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return 0


def _fetch_stats(host: str, port: int, timeout: float = 5.0) -> dict:
    from urllib.request import urlopen

    with urlopen(
        f"http://{host}:{port}/v1/stats", timeout=timeout
    ) as response:
        return json.loads(response.read().decode("utf-8"))


def _render_top(
    snapshot: dict, prev: Optional[dict], elapsed: Optional[float]
) -> str:
    """One ``spitz top`` frame from a ``/v1/stats`` payload.

    Windowed signals (RPS, percentiles, error rate, SLO states) come
    from the server's telemetry plane; per-shard write rates are
    computed client-side from successive poll deltas, since shard
    snapshots carry cumulative counters only.
    """
    lines: List[str] = []
    windows = snapshot.get("windows", {}).get("windows", {})
    fast_label = "60s" if "60s" in windows else next(iter(windows), None)
    fast = windows.get(fast_label, {}) if fast_label else {}
    rates = fast.get("rates", {})
    rps = rates.get("requests.total", 0.0)
    err_rate = rates.get("requests.errors", 0.0)
    err_pct = (100.0 * err_rate / rps) if rps else 0.0
    latency = fast.get("histograms", {}).get("request.latency_seconds", {})
    depth = snapshot.get("gauges", {}).get("queue.depth", 0)
    shed_rate = rates.get("queue.shed", 0.0)
    window_note = f" (over {fast_label})" if fast_label else ""
    lines.append(f"spitz top{window_note}")
    lines.append(
        f"  rps {rps:8.1f}   errors {err_pct:5.1f}%   "
        f"queue depth {depth:g}   shed/s {shed_rate:.1f}"
    )
    if latency.get("count"):
        lines.append(
            f"  latency p50 {latency['p50'] * 1000:7.2f}ms   "
            f"p99 {latency['p99'] * 1000:7.2f}ms   "
            f"({latency['count']} requests)"
        )
    else:
        lines.append("  latency (no requests in window)")
    kinds = sorted(
        (name[len("requests.kind."):], rate)
        for name, rate in rates.items()
        if name.startswith("requests.kind.")
        and not name.endswith((".ok", ".errors"))
    )
    if kinds:
        lines.append("  by kind: " + "  ".join(
            f"{kind} {rate:.1f}/s" for kind, rate in kinds
        ))
    search_qps = rates.get("search.queries", 0.0)
    search_hists = fast.get("histograms", {})
    maintain = search_hists.get("span.search.maintain", {})
    if search_qps or maintain.get("count"):
        match_rate = rates.get("search.matches", 0.0)
        proof_rate = rates.get("search.proof_bytes", 0.0)
        lines.append(
            f"  search: {search_qps:.1f} q/s   matches {match_rate:.1f}/s"
            f"   proof {proof_rate:.0f} B/s"
        )
        if maintain.get("count"):
            lines.append(
                f"  index maintain p50 {maintain['p50'] * 1000:7.3f}ms   "
                f"p99 {maintain['p99'] * 1000:7.3f}ms   "
                f"({maintain['count']} seals)"
            )
    shards = snapshot.get("shards")
    if shards:
        lines.append("  shards (write rate):")
        prev_shards = (prev or {}).get("shards", {})
        for shard_id in sorted(shards):
            commits = shards[shard_id].get("counters", {}).get(
                "db.commits", 0
            )
            note = f"{commits} commits"
            if elapsed and shard_id in prev_shards:
                before = prev_shards[shard_id].get("counters", {}).get(
                    "db.commits", 0
                )
                note += f"  {(commits - before) / elapsed:8.1f} writes/s"
            lines.append(f"    shard {shard_id}: {note}")
    slo = snapshot.get("slo", {})
    objectives = slo.get("objectives", [])
    if objectives:
        overall = "OK" if slo.get("ok", True) else "BURNING"
        lines.append(f"  slo [{overall}]:")
        for status in objectives:
            lines.append(
                f"    {status['name']:<24} {status['state']:<9} "
                f"burn {status['fast_burn']:.2f}x/1m "
                f"{status['slow_burn']:.2f}x/10m"
            )
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    """Polling terminal dashboard over a running ``spitz serve``.

    Renders RPS, p50/p99 latency, error %, queue depth, per-shard
    write rates and SLO burn states from ``/v1/stats`` every
    ``--interval`` seconds.  ``--iterations 1`` prints one frame and
    exits (scriptable); 0 polls until interrupted.
    """
    prev: Optional[dict] = None
    prev_at: Optional[float] = None
    frames = 0
    while True:
        try:
            snapshot = _fetch_stats(args.host, args.port)
        except OSError as error:
            print(
                f"error: cannot reach http://{args.host}:{args.port}"
                f"/v1/stats: {error}",
                file=sys.stderr,
            )
            return 1
        now = time.monotonic()
        elapsed = (now - prev_at) if prev_at is not None else None
        frame = _render_top(snapshot, prev, elapsed)
        if sys.stdout.isatty() and args.iterations != 1:
            # Clear + home, only on a live terminal: redirected output
            # stays a plain append-only log.
            print("\x1b[2J\x1b[H", end="")
        print(frame)
        frames += 1
        if args.iterations and frames >= args.iterations:
            return 0
        prev, prev_at = snapshot, now
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run the traced workload under the sampling profiler.

    Prints flamegraph-compatible folded stacks on stdout (feed to
    ``flamegraph.pl`` or speedscope); the sample-count summary goes to
    stderr so redirection stays clean.
    """
    from repro.obs.profiler import SamplingProfiler

    profiler = SamplingProfiler(interval=args.interval)
    profiler.start()
    try:
        _drive_traced_cluster(args)
    finally:
        profiler.stop()
    folded = profiler.folded(limit=args.limit if args.limit > 0 else None)
    if folded:
        print(folded)
    print(
        f"# {profiler.samples} samples at {args.interval * 1000:g}ms "
        f"interval across {args.ops} ops",
        file=sys.stderr,
    )
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    with _Session(args.db) as session:
        if session.durable is None:
            raise SpitzError(
                f"{args.db} is a snapshot file; 'checkpoint' needs a "
                "durable directory (init --durable)"
            )
        lsn, path = session.durable.checkpoint()
        print(f"checkpoint at lsn {lsn}: {path.name}")
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    if not Path(args.db).is_dir():
        raise SpitzError(
            f"{args.db} is not a durable directory; nothing to recover"
        )
    report = recover(args.db)
    print(f"recovered: {report.describe()}")
    print(f"height: {report.db.ledger.height}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="create an empty database")
    p.add_argument("db")
    p.add_argument("--force", action="store_true")
    p.add_argument(
        "--durable", action="store_true",
        help="create a WAL+checkpoint directory instead of a snapshot file",
    )
    p.add_argument(
        "--index", action="append", default=[], metavar="TABLE.COLUMN",
        help="enable the verified search plane over this column "
             "(repeatable; snapshot databases only)",
    )
    p.set_defaults(func=cmd_init)

    p = sub.add_parser("put", help="write one key")
    p.add_argument("db")
    p.add_argument("key")
    p.add_argument("value")
    p.set_defaults(func=cmd_put)

    p = sub.add_parser("get", help="read one key")
    p.add_argument("db")
    p.add_argument("key")
    p.add_argument("--verify", action="store_true")
    p.set_defaults(func=cmd_get)

    p = sub.add_parser(
        "mget", help="batch read; --verify uses one multiproof"
    )
    p.add_argument("db")
    p.add_argument("keys", nargs="+")
    p.add_argument("--verify", action="store_true")
    p.set_defaults(func=cmd_mget)

    p = sub.add_parser("delete", help="delete one key (history kept)")
    p.add_argument("db")
    p.add_argument("key")
    p.set_defaults(func=cmd_delete)

    p = sub.add_parser("scan", help="range scan")
    p.add_argument("db")
    p.add_argument("low")
    p.add_argument("high")
    p.set_defaults(func=cmd_scan)

    p = sub.add_parser("history", help="all versions of one key")
    p.add_argument("db")
    p.add_argument("key")
    p.set_defaults(func=cmd_history)

    p = sub.add_parser("sql", help="execute one SQL statement")
    p.add_argument("db")
    p.add_argument("statement")
    p.set_defaults(func=cmd_sql)

    p = sub.add_parser(
        "search",
        help="secondary-index search; --verify proves membership AND "
             "completeness against the pinned digest",
    )
    p.add_argument(
        "db", nargs="?", default=None,
        help="database path (omit in remote mode with --port)",
    )
    p.add_argument("column", metavar="TABLE.COLUMN")
    p.add_argument(
        "predicate",
        help="'== foo', '>= 10', '< 2.5', 'between 3 7', or a bare "
             "keyword (equality); quote a literal to force a string",
    )
    p.add_argument("--verify", action="store_true")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="query a running spitz serve instead of a DB path")
    p.add_argument("--token", default=None, help="auth token to present")
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("digest", help="print the ledger digest")
    p.add_argument("db")
    p.set_defaults(func=cmd_digest)

    p = sub.add_parser("audit", help="full-chain consistency audit")
    p.add_argument("db")
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser(
        "stats",
        help="print the metrics snapshot (counters/gauges/histograms)",
    )
    p.add_argument("db")
    p.add_argument("--json", action="store_true",
                   help="emit the snapshot as JSON (the same frame the "
                        "HTTP /v1/stats endpoint serves)")
    p.add_argument("--prom", action="store_true",
                   help="emit the Prometheus text rendering (what a "
                        "running server serves at /metrics)")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "saturate",
        help="overload an in-process cluster; report reject/shed/complete",
    )
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--ops", type=int, default=25)
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--capacity", type=int, default=16)
    p.add_argument(
        "--deadline", type=float, default=0.25,
        help="per-request client deadline in seconds",
    )
    p.add_argument(
        "--attempts", type=int, default=1,
        help="client retry attempts (1 = no retries)",
    )
    p.add_argument(
        "--service-delay", type=float, default=0.002,
        help="artificial per-request service time, seconds",
    )
    p.set_defaults(func=cmd_saturate)

    for name, func, blurb in (
        (
            "trace",
            cmd_trace,
            "run a traced in-process workload; print request span trees",
        ),
        (
            "slowest",
            cmd_slowest,
            "run a traced in-process workload; print the slowest traces "
            "and per-stage critical-path attribution",
        ),
    ):
        p = sub.add_parser(name, help=blurb)
        p.add_argument("--ops", type=int, default=50,
                       help="put/get/verified-get rounds to drive")
        p.add_argument("--nodes", type=int, default=2)
        p.add_argument("--limit", type=int, default=5,
                       help="traces to print")
        if name == "trace":
            p.add_argument(
                "--failures", action="store_true",
                help="show failed/shed traces instead of recent ones",
            )
        p.add_argument("--json", action="store_true",
                       help="emit the flight-recorder snapshot as JSON")
        p.set_defaults(func=func)

    p = sub.add_parser(
        "serve",
        help="serve a cluster over HTTP (rate limits, auth, shedding)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7421)
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--capacity", type=int, default=64,
                   help="admission queue capacity (0 = unbounded)")
    p.add_argument("--durable-root", default=None,
                   help="serve a durable database rooted at this directory")
    p.add_argument("--shards", type=int, default=1,
                   help="hash-partition the keyspace across N shard "
                        "ledgers behind one digest-of-digests (1 = single "
                        "ledger)")
    p.add_argument("--token", action="append", default=[],
                   help="accepted auth token (repeatable; none = open)")
    p.add_argument("--rate", type=float, default=None,
                   help="per-client sustained requests/second (None = off)")
    p.add_argument("--burst", type=float, default=None,
                   help="per-client burst size (defaults to 2x rate)")
    p.add_argument("--request-timeout", type=float, default=10.0,
                   help="default per-request deadline, seconds")
    p.add_argument("--index", action="append", default=[],
                   metavar="TABLE.COLUMN",
                   help="enable the verified search plane over this "
                        "column (repeatable; incompatible with --shards)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="drive a running spitz serve from separate OS processes",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7421)
    p.add_argument("--processes", type=int, default=2)
    p.add_argument("--ops", type=int, default=200,
                   help="operations per process")
    p.add_argument("--put-ratio", type=float, default=0.8)
    p.add_argument("--verify-every", type=int, default=0,
                   help="every Nth op requests a verifiable proof (0 = off)")
    p.add_argument("--attempts", type=int, default=1,
                   help="client retry attempts per op (1 = no retries)")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="per-request deadline, seconds")
    p.add_argument("--token", default=None, help="auth token to present")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "top",
        help="polling terminal dashboard over a running spitz serve",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7421)
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between polls")
    p.add_argument("--iterations", type=int, default=0,
                   help="frames to render before exiting (0 = forever)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "profile",
        help="run the traced workload under the sampling profiler; "
             "print folded stacks",
    )
    p.add_argument("--ops", type=int, default=200,
                   help="put/get/verified-get rounds to drive")
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--interval", type=float, default=0.005,
                   help="sampling interval, seconds")
    p.add_argument("--limit", type=int, default=0,
                   help="hottest folded stacks to print (0 = all)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "checkpoint",
        help="snapshot a durable database and truncate its WAL",
    )
    p.add_argument("db")
    p.set_defaults(func=cmd_checkpoint)

    p = sub.add_parser(
        "recover",
        help="run crash recovery on a durable database and report",
    )
    p.add_argument("db")
    p.set_defaults(func=cmd_recover)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TamperDetectedError as error:
        print(f"TAMPER DETECTED: {error}", file=sys.stderr)
        return EXIT_TAMPERED
    except SpitzError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
