"""Command-line interface.

A small operational surface over a snapshot-persisted Spitz database::

    python -m repro.cli init mydb.spitz
    python -m repro.cli put mydb.spitz account:alice 100
    python -m repro.cli get mydb.spitz account:alice --verify
    python -m repro.cli sql mydb.spitz "CREATE TABLE t (id INT, PRIMARY KEY (id))"
    python -m repro.cli history mydb.spitz account:alice
    python -m repro.cli audit mydb.spitz
    python -m repro.cli digest mydb.spitz

Every mutating command rewrites the snapshot; ``audit`` replays the
whole chain; ``get --verify`` checks the proof against the snapshot's
own digest and prints both.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.audit import audit_ledger
from repro.core.database import SpitzDatabase
from repro.core.persistence import load_database, save_database
from repro.core.verifier import ClientVerifier
from repro.errors import SpitzError


def _open(path: str) -> SpitzDatabase:
    if not Path(path).exists():
        raise SpitzError(
            f"no database at {path}; run 'init {path}' first"
        )
    return load_database(path)


def cmd_init(args: argparse.Namespace) -> int:
    if Path(args.db).exists() and not args.force:
        print(f"refusing to overwrite {args.db} (use --force)")
        return 1
    db = SpitzDatabase()
    size = save_database(db, args.db)
    print(f"initialized {args.db} ({size} bytes)")
    return 0


def cmd_put(args: argparse.Namespace) -> int:
    db = _open(args.db)
    block = db.put(args.key.encode(), args.value.encode())
    save_database(db, args.db)
    print(f"ok: sealed block #{block.height}")
    return 0


def cmd_get(args: argparse.Namespace) -> int:
    db = _open(args.db)
    if args.verify:
        value, proof = db.get_verified(args.key.encode())
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        ok = verifier.verify(proof)
        state = "VERIFIED" if ok else "VERIFICATION FAILED"
        rendered = value.decode(errors="replace") if value else "(absent)"
        print(f"{rendered}  [{state}; {len(proof.siri.nodes)} proof nodes]")
        return 0 if ok else 2
    value = db.get(args.key.encode())
    print(value.decode(errors="replace") if value else "(absent)")
    return 0


def cmd_delete(args: argparse.Namespace) -> int:
    db = _open(args.db)
    block = db.delete(args.key.encode())
    save_database(db, args.db)
    print(f"ok: sealed block #{block.height}")
    return 0


def cmd_scan(args: argparse.Namespace) -> int:
    db = _open(args.db)
    for key, value in db.scan(args.low.encode(), args.high.encode()):
        print(f"{key.decode(errors='replace')}\t"
              f"{value.decode(errors='replace')}")
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    db = _open(args.db)
    for timestamp, value in db.history(args.key.encode()):
        print(f"ts {timestamp}: {value.decode(errors='replace')}")
    return 0


def cmd_sql(args: argparse.Namespace) -> int:
    db = _open(args.db)
    result = db.sql(args.statement)
    if isinstance(result, list):
        for row in result:
            print(row)
        print(f"({len(result)} rows)")
    elif isinstance(result, int):
        print(f"({result} rows affected)")
        save_database(db, args.db)
    else:
        height = getattr(result, "height", "?")
        print(f"ok: sealed block #{height}")
        save_database(db, args.db)
    return 0


def cmd_digest(args: argparse.Namespace) -> int:
    db = _open(args.db)
    digest = db.digest()
    print(f"height: {digest.height}")
    print(f"chain:  {digest.chain_digest.hex()}")
    print(f"root:   {digest.tree_root.hex()}")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    db = _open(args.db)
    findings = audit_ledger(db.ledger)
    if findings:
        for finding in findings:
            print(f"FINDING: {finding}")
        return 2
    print(f"clean: {db.ledger.height} blocks audited")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="create an empty database snapshot")
    p.add_argument("db")
    p.add_argument("--force", action="store_true")
    p.set_defaults(func=cmd_init)

    p = sub.add_parser("put", help="write one key")
    p.add_argument("db")
    p.add_argument("key")
    p.add_argument("value")
    p.set_defaults(func=cmd_put)

    p = sub.add_parser("get", help="read one key")
    p.add_argument("db")
    p.add_argument("key")
    p.add_argument("--verify", action="store_true")
    p.set_defaults(func=cmd_get)

    p = sub.add_parser("delete", help="delete one key (history kept)")
    p.add_argument("db")
    p.add_argument("key")
    p.set_defaults(func=cmd_delete)

    p = sub.add_parser("scan", help="range scan")
    p.add_argument("db")
    p.add_argument("low")
    p.add_argument("high")
    p.set_defaults(func=cmd_scan)

    p = sub.add_parser("history", help="all versions of one key")
    p.add_argument("db")
    p.add_argument("key")
    p.set_defaults(func=cmd_history)

    p = sub.add_parser("sql", help="execute one SQL statement")
    p.add_argument("db")
    p.add_argument("statement")
    p.set_defaults(func=cmd_sql)

    p = sub.add_parser("digest", help="print the ledger digest")
    p.add_argument("db")
    p.set_defaults(func=cmd_digest)

    p = sub.add_parser("audit", help="full-chain consistency audit")
    p.add_argument("db")
    p.set_defaults(func=cmd_audit)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SpitzError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
