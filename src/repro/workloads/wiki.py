"""The Figure 1 workload: versioned wiki pages.

"Consider another example where an immutable database stores 10 WIKI
pages of 16 KB each initially.  We create a new version when updating
a page, while keeping the previous versions" (Section 1).  Figure 1
plots storage versus version count for a naive snapshot store and for
ForkBase with content-based deduplication.

Edits are *localized* — a contiguous slice of the page is rewritten —
which is what real page edits look like and what content-defined
chunking exploits.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import Dict, List, Tuple

PAGE_COUNT = 10
PAGE_SIZE = 16 * 1024

_TEXT = (string.ascii_letters + string.digits + " .,\n").encode("ascii")


@dataclass(frozen=True)
class WikiEdit:
    """One page update: the page id and its full new content."""

    version: int
    page: str
    content: bytes


class WikiWorkload:
    """Deterministic page contents and an edit stream."""

    def __init__(
        self,
        pages: int = PAGE_COUNT,
        page_size: int = PAGE_SIZE,
        edit_size: int = 512,
        seed: int = 0,
    ):
        self.page_size = page_size
        self.edit_size = edit_size
        self._rng = random.Random(seed)
        self.pages: Dict[str, bytes] = {
            f"wiki/page-{i:02d}": self._random_text(page_size)
            for i in range(pages)
        }

    def _random_text(self, size: int) -> bytes:
        return bytes(self._rng.choice(_TEXT) for _ in range(size))

    def initial_pages(self) -> List[Tuple[str, bytes]]:
        """The version-1 content of every page."""
        return sorted(self.pages.items())

    def edits(self, versions: int) -> List[WikiEdit]:
        """One edit per version step (versions 2..versions).

        Each edit rewrites a random ``edit_size`` slice of a random
        page — the locality assumption behind Figure 1's dedup gains.
        """
        stream: List[WikiEdit] = []
        names = sorted(self.pages)
        for version in range(2, versions + 1):
            page = names[self._rng.randrange(len(names))]
            content = bytearray(self.pages[page])
            offset = self._rng.randrange(
                max(1, self.page_size - self.edit_size)
            )
            patch = self._random_text(self.edit_size)
            content[offset:offset + len(patch)] = patch
            self.pages[page] = bytes(content)
            stream.append(
                WikiEdit(version=version, page=page, content=bytes(content))
            )
        return stream


def naive_storage_bytes(
    initial: List[Tuple[str, bytes]], edits: List[WikiEdit]
) -> int:
    """Bytes a snapshot-per-version store would hold (no dedup)."""
    return sum(len(content) for _page, content in initial) + sum(
        len(edit.content) for edit in edits
    )
