"""Key-choice distributions.

Uniform matches the paper's Section 6.2 setup; zipfian is provided for
the contention ablations (skewed access is what stresses the
concurrency-control certifiers).
"""

from __future__ import annotations

import bisect
import random
from typing import List


class UniformChooser:
    """Choose indices uniformly from ``[0, n)``."""

    def __init__(self, n: int, seed: int = 0):
        if n < 1:
            raise ValueError("population must be positive")
        self._n = n
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self._n)


class ZipfChooser:
    """Choose indices with a zipfian distribution over ``[0, n)``.

    ``theta`` is the skew (0 = uniform-ish, 0.99 = YCSB's default hot
    skew).  Uses an inverse-CDF table, O(log n) per draw, exact for
    the finite population.
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0):
        if n < 1:
            raise ValueError("population must be positive")
        if not 0.0 <= theta < 1.0:
            raise ValueError("theta must be in [0, 1)")
        self._rng = random.Random(seed)
        weights = [1.0 / (rank + 1) ** theta for rank in range(n)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float drift

    def next(self) -> int:
        return bisect.bisect_left(self._cdf, self._rng.random())
