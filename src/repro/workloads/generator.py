"""The Section 6.2 key-value workload.

"The number of records ... vary from 10,000 to 1,280,000.  The length
of the key ranges from 5 to 12 bytes while the size of the value is 20
bytes."  Range queries (Section 6.2.2) select on the primary key with
fixed 0.1 % selectivity.

Everything is seeded and deterministic so paper-style sweeps are
reproducible run to run.
"""

from __future__ import annotations

import enum
import random
import string
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.workloads.distributions import UniformChooser, ZipfChooser

KEY_MIN_LEN = 5
KEY_MAX_LEN = 12
VALUE_LEN = 20

_ALPHABET = (string.ascii_lowercase + string.digits).encode("ascii")


class OpKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    SCAN = "scan"


@dataclass(frozen=True)
class Operation:
    """One workload operation."""

    kind: OpKind
    key: bytes
    value: Optional[bytes] = None
    high: Optional[bytes] = None  # scan upper bound


class WorkloadGenerator:
    """Deterministic record and operation streams."""

    def __init__(self, n_records: int, seed: int = 0, zipf: bool = False):
        if n_records < 1:
            raise ValueError("need at least one record")
        self.n_records = n_records
        self._seed = seed
        self._rng = random.Random(seed)
        self.keys = self._make_keys()
        self._chooser = (
            ZipfChooser(n_records, seed=seed)
            if zipf
            else UniformChooser(n_records, seed=seed)
        )
        # Sorted copy for selectivity-based range bounds.
        self.sorted_keys = sorted(self.keys)

    def _make_keys(self) -> List[bytes]:
        """Distinct random keys, 5-12 bytes each."""
        keys: List[bytes] = []
        seen = set()
        while len(keys) < self.n_records:
            length = self._rng.randint(KEY_MIN_LEN, KEY_MAX_LEN)
            key = bytes(
                self._rng.choice(_ALPHABET) for _ in range(length)
            )
            if key not in seen:
                seen.add(key)
                keys.append(key)
        return keys

    def value(self) -> bytes:
        """A fresh 20-byte value."""
        return bytes(
            self._rng.choice(_ALPHABET) for _ in range(VALUE_LEN)
        )

    def records(self) -> Iterator[Tuple[bytes, bytes]]:
        """The initial (key, value) load, in generation order."""
        for key in self.keys:
            yield key, self.value()

    # -- operation streams ---------------------------------------------------

    def reads(self, count: int) -> Iterator[Operation]:
        """Read-only stream over existing keys."""
        for _ in range(count):
            yield Operation(
                kind=OpKind.READ, key=self.keys[self._chooser.next()]
            )

    def writes(self, count: int) -> Iterator[Operation]:
        """Write-only stream (updates of existing keys)."""
        for _ in range(count):
            yield Operation(
                kind=OpKind.WRITE,
                key=self.keys[self._chooser.next()],
                value=self.value(),
            )

    def mixed(self, count: int, read_fraction: float) -> Iterator[Operation]:
        """Mixed stream with the given read fraction."""
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be within [0, 1]")
        for _ in range(count):
            key = self.keys[self._chooser.next()]
            if self._rng.random() < read_fraction:
                yield Operation(kind=OpKind.READ, key=key)
            else:
                yield Operation(
                    kind=OpKind.WRITE, key=key, value=self.value()
                )

    def range_scans(
        self, count: int, selectivity: float = 0.001
    ) -> Iterator[Operation]:
        """Primary-key range scans with fixed selectivity.

        Each scan covers ``selectivity * n`` consecutive keys of the
        sorted key space (Section 6.2.2 fixes selectivity at 0.1 %).
        """
        span = max(1, int(self.n_records * selectivity))
        for _ in range(count):
            start = self._rng.randrange(self.n_records - span + 1)
            yield Operation(
                kind=OpKind.SCAN,
                key=self.sorted_keys[start],
                high=self.sorted_keys[start + span - 1],
            )

    @property
    def scan_span(self) -> int:
        """How many records a 0.1 % scan returns at this size."""
        return max(1, int(self.n_records * 0.001))
