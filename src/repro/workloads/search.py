"""Streaming workload for the verified-search benchmark.

Two pieces, both O(1) memory so ``--figure search`` can index a
million keys without materializing a million-element CDF or row list:

- :class:`StreamingZipf` — YCSB's approximate zipfian generator
  (Gray et al., "Quickly Generating Billion-Record Synthetic
  Databases").  One O(n) pass computes the normalization constant
  ``zetan``; every draw after that is O(1) arithmetic, versus
  :class:`~repro.workloads.distributions.ZipfChooser`'s O(n) CDF table
  (exact, but a 1M-entry float list is exactly what a memory-guarded
  streaming benchmark must not allocate).
- :class:`SearchWorkload` — a seeded row stream mixing a zipf-skewed
  *keyword* column (vocabulary drawn from the wiki workload's page
  names plus synthetic terms) with a quantized *numeric* column.  Rows
  are yielded one at a time; the accumulated postings (what the
  committed search index bulk-loads) grow with the vocabulary, not the
  row count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

#: Default column names the benchmark indexes.
KEYWORD_COLUMN = "docs.term"
NUMERIC_COLUMN = "docs.score"


class StreamingZipf:
    """Approximate zipfian draws over ``[0, n)`` in O(1) memory.

    The YCSB generator: skew ``theta`` in [0, 1), one O(n) pass for
    ``zetan`` at construction, constant work per :meth:`next`.  Rank 0
    is the hottest item, matching :class:`ZipfChooser`'s convention.
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0):
        if n < 1:
            raise ValueError("population must be positive")
        if not 0.0 <= theta < 1.0:
            raise ValueError("theta must be in [0, 1)")
        self._n = n
        self._theta = theta
        self._rng = random.Random(seed)
        zetan = 0.0
        for rank in range(1, n + 1):
            zetan += 1.0 / rank ** theta
        zeta2 = 1.0 + (0.5 ** theta if n > 1 else 0.0)
        self._zetan = zetan
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (
            (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - zeta2 / zetan)
            if n > 1
            else 0.0
        )

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self._theta:
            return 1
        rank = int(self._n * (self._eta * u - self._eta + 1.0) ** self._alpha)
        return min(rank, self._n - 1)


@dataclass(frozen=True)
class SearchRow:
    """One generated row: primary key plus the two indexed values."""

    pk: int
    term: str
    score: float


class SearchWorkload:
    """Seeded stream of rows for the verified-search benchmark.

    - ``term`` — zipf-skewed draw from a ``vocabulary``-sized term set
      (wiki-style page names for the head of the distribution,
      synthetic ``term-NNNN`` strings for the tail), so keyword
      queries hit realistic hot/cold postings;
    - ``score`` — uniform draw quantized to ``score_levels`` distinct
      values, so numeric range predicates select contiguous posting
      runs and the committed tree stays vocabulary-sized.

    :meth:`rows` streams; :meth:`postings` consumes the stream while
    accumulating the per-column postings maps the committed index
    bulk-loads.  Peak memory is O(vocabulary + levels + total pk
    bytes), never O(rows × row-size).
    """

    def __init__(
        self,
        rows: int,
        vocabulary: int = 1000,
        score_levels: int = 1000,
        theta: float = 0.99,
        seed: int = 0,
    ):
        if rows < 1:
            raise ValueError("need at least one row")
        if vocabulary < 1 or score_levels < 1:
            raise ValueError("vocabulary and score_levels must be positive")
        self.count = rows
        self.vocabulary = vocabulary
        self.score_levels = score_levels
        self._term_chooser = StreamingZipf(vocabulary, theta, seed)
        self._rng = random.Random(seed + 1)
        # Wiki page names head the vocabulary (the paper's Figure 1
        # corpus); the tail is synthetic.  Built lazily per rank so the
        # term list itself is the only vocabulary-sized allocation.
        self._terms: List[str] = [
            f"wiki/page-{rank:02d}" if rank < 10 else f"term-{rank:05d}"
            for rank in range(vocabulary)
        ]

    def term_of(self, rank: int) -> str:
        return self._terms[rank]

    def rows(self) -> Iterator[SearchRow]:
        """Stream the seeded rows one at a time (O(1) memory)."""
        for pk in range(self.count):
            term = self._terms[self._term_chooser.next()]
            score = float(self._rng.randrange(self.score_levels))
            yield SearchRow(pk=pk, term=term, score=score)

    @staticmethod
    def pk_bytes(pk: int) -> bytes:
        """The 8-byte posting entry for one primary key."""
        return pk.to_bytes(8, "big")

    def postings(
        self,
    ) -> Tuple[Dict[str, List[bytes]], Dict[float, List[bytes]]]:
        """Consume the stream into per-column postings maps.

        Returns ``(term_postings, score_postings)`` keyed by value;
        each posting list holds the 8-byte primary-key entries in
        insertion (= ascending pk) order.  This is the bulk-load input
        for :meth:`~repro.search.committed.CommittedSearchIndex
        .bulk_load`.
        """
        terms: Dict[str, List[bytes]] = {}
        scores: Dict[float, List[bytes]] = {}
        for row in self.rows():
            entry = self.pk_bytes(row.pk)
            terms.setdefault(row.term, []).append(entry)
            scores.setdefault(row.score, []).append(entry)
        return terms, scores


__all__ = [
    "KEYWORD_COLUMN",
    "NUMERIC_COLUMN",
    "SearchRow",
    "SearchWorkload",
    "StreamingZipf",
]
