"""Workload generators for the paper's experiments.

- :mod:`~repro.workloads.distributions` — key choosers (uniform,
  zipfian);
- :mod:`~repro.workloads.generator` — the Section 6.2 key-value
  workload (keys 5–12 bytes, values 20 bytes; read-only / write-only /
  mixed / range);
- :mod:`~repro.workloads.wiki` — the Figure 1 wiki-page versioning
  workload (10 pages × 16 KB, localized edits);
- :mod:`~repro.workloads.search` — the verified-search row stream
  (O(1)-memory zipf keyword mix + quantized numeric column, 1M+ keys).
"""

from repro.workloads.distributions import UniformChooser, ZipfChooser
from repro.workloads.generator import Operation, OpKind, WorkloadGenerator
from repro.workloads.search import SearchRow, SearchWorkload, StreamingZipf
from repro.workloads.wiki import WikiWorkload

__all__ = [
    "Operation",
    "OpKind",
    "SearchRow",
    "SearchWorkload",
    "StreamingZipf",
    "UniformChooser",
    "WikiWorkload",
    "WorkloadGenerator",
    "ZipfChooser",
]
