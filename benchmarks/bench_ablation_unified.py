"""Ablation 1 — unified vs separate proof path.

DESIGN.md §5.1: the core design decision behind Spitz's verified-read
advantage.  We isolate the two proof-retrieval strategies on the same
data: the POS-tree's single traversal (value + proof together) vs the
baseline's two-structure walk (view lookup, then per-record journal
search).
"""

import itertools

import pytest


def test_unified_value_plus_proof(benchmark, gen, spitz):
    """One POS-tree traversal yields both value and proof."""
    keys = itertools.cycle([op.key for op in gen.reads(256)])
    ledger = spitz.ledger
    from repro.core.schema import KV_PREFIX

    def unified():
        return ledger.get_with_proof(KV_PREFIX + next(keys))

    benchmark(unified)


def test_separate_value_then_proof(benchmark, gen, baseline):
    """Baseline: B+-tree view for the value, then the journal search
    for the proof."""
    keys = itertools.cycle([op.key for op in gen.reads(32)])

    def separate():
        return baseline.get_verified(next(keys))

    benchmark(separate)


def test_ablation_shape_unified_wins():
    """At equal size, proof retrieval via the unified index is at
    least several times faster than the separate-journal path."""
    import time

    from repro.baseline.ledger_db import BaselineLedgerDB
    from repro.core.database import SpitzDatabase
    from repro.core.schema import KV_PREFIX
    from repro.workloads.generator import WorkloadGenerator

    gen = WorkloadGenerator(1500, seed=3)
    spitz = SpitzDatabase(block_batch=64)
    baseline = BaselineLedgerDB()
    for key, value in gen.records():
        spitz.put(key, value)
        baseline.put(key, value)
    spitz.flush_ledger()
    keys = [op.key for op in gen.reads(60)]

    start = time.perf_counter()
    for key in keys:
        spitz.ledger.get_with_proof(KV_PREFIX + key)
    unified = time.perf_counter() - start

    start = time.perf_counter()
    for key in keys:
        baseline.get_verified(key)
    separate = time.perf_counter() - start

    assert separate > unified * 2
