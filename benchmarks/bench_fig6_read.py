"""Figure 6(a) — read-only throughput, single thread.

Five configurations over the same preloaded workload: the immutable
KVS, Spitz with and without verification, and the baseline with and
without verification.  ``pytest-benchmark`` reports per-operation
latency; ops/s is its inverse.  The full size sweep is printed by
``python -m repro.bench.harness --figure 6a``.
"""

import itertools

import pytest


def _key_cycle(gen, count=256):
    keys = [op.key for op in gen.reads(count)]
    return itertools.cycle(keys)


def test_read_immutable_kvs(benchmark, gen, kvs):
    keys = _key_cycle(gen)
    benchmark(lambda: kvs.get(next(keys)))


def test_read_spitz(benchmark, gen, spitz):
    keys = _key_cycle(gen)
    benchmark(lambda: spitz.get(next(keys)))


def test_read_spitz_verify(benchmark, gen, spitz, spitz_verifier):
    keys = _key_cycle(gen)

    def verified_read():
        value, proof = spitz.get_verified(next(keys))
        spitz_verifier.verify_or_raise(proof)
        return value

    benchmark(verified_read)


def test_read_baseline(benchmark, gen, baseline):
    keys = _key_cycle(gen)
    benchmark(lambda: baseline.get(next(keys)))


def test_read_baseline_verify(benchmark, gen, baseline):
    keys = _key_cycle(gen, count=32)
    root = baseline.digest()

    def verified_read():
        value, proof = baseline.get_verified(next(keys))
        assert proof.verify(root)
        return value

    benchmark(verified_read)
