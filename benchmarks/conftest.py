"""Shared fixtures for the benchmark suite.

Each fixture loads one system with a paper-style workload at a size
chosen by ``SPITZ_BENCH_N`` (default 2000 — small enough for CI, big
enough for index depth to matter).  Loading happens once per module;
``pytest-benchmark`` then times the measured operation only.

The full paper-style sweeps (all sizes, all series) live in
``repro.bench.harness``; run ``python -m repro.bench.harness`` for
those.  This suite feeds ``pytest benchmarks/ --benchmark-only``.
"""

import gc
import os

import pytest

from repro.baseline.ledger_db import BaselineLedgerDB
from repro.core.database import SpitzDatabase
from repro.core.verifier import ClientVerifier
from repro.integration.nonintrusive import NonIntrusiveVDB
from repro.kvstore.kvs import ImmutableKVS
from repro.workloads.generator import WorkloadGenerator

BENCH_N = int(os.environ.get("SPITZ_BENCH_N", "2000"))
SEED = 1


@pytest.fixture(scope="module")
def gen():
    return WorkloadGenerator(BENCH_N, seed=SEED)


@pytest.fixture(scope="module")
def kvs(gen):
    system = ImmutableKVS()
    for key, value in gen.records():
        system.put(key, value)
    gc.collect()
    return system


@pytest.fixture(scope="module")
def spitz(gen):
    system = SpitzDatabase(block_batch=64)
    for key, value in gen.records():
        system.put(key, value)
    system.flush_ledger()
    gc.collect()
    return system


@pytest.fixture(scope="module")
def baseline(gen):
    system = BaselineLedgerDB()
    for key, value in gen.records():
        system.put(key, value)
    gc.collect()
    return system


@pytest.fixture(scope="module")
def nonintrusive(gen):
    system = NonIntrusiveVDB()
    for key, value in gen.records():
        system.put(key, value)
    gc.collect()
    return system


@pytest.fixture
def spitz_verifier(spitz):
    verifier = ClientVerifier()
    verifier.trust(spitz.digest())
    return verifier
