"""Durability cost benchmarks: WAL vs snapshot-per-op; recovery time.

The claims measured here (the durability PR's acceptance bar):

1. **WAL commit cost is O(delta), snapshot commit is O(database)** —
   at 10k resident keys a durable ``put`` through the WAL is ≥ 10×
   faster than the legacy "rewrite the whole snapshot per mutation"
   path the CLI used to take.
2. **Group commit wins** — batching ≥ 8 records per fsync yields
   higher commit throughput than an fsync per record.
3. **Checkpoints bound recovery** — recovery replays only the
   post-checkpoint suffix, so recovery time tracks log length, not
   database lifetime.

Run standalone for a table (``PYTHONPATH=src python -m
benchmarks.bench_durability``) or via pytest (``pytest
benchmarks/bench_durability.py``).  ``SPITZ_DURABILITY_N`` scales the
resident-set size (default 10_000).
"""

import os
import tempfile
import time
from pathlib import Path

import pytest

from repro.core.database import SpitzDatabase
from repro.core.persistence import save_database
from repro.durability import DurableDatabase, recover
from repro.durability.wal import WriteAheadLog

N_KEYS = int(os.environ.get("SPITZ_DURABILITY_N", "10000"))


def _records(count):
    return {
        f"key{i:06d}".encode(): f"value{i}".encode() for i in range(count)
    }


def _time_per_op(fn, ops):
    start = time.perf_counter()
    for i in range(ops):
        fn(i)
    return (time.perf_counter() - start) / ops


@pytest.fixture(scope="module")
def loaded_root(tmp_path_factory):
    """A durable database with N_KEYS resident keys (one batch block)."""
    root = tmp_path_factory.mktemp("durable")
    ddb = DurableDatabase.open(root)
    ddb.put_batch(_records(N_KEYS))
    yield root, ddb
    ddb.close()


def measure_wal_put(ddb, ops=50):
    return _time_per_op(
        lambda i: ddb.put(b"wal-bench-%d" % i, b"x"), ops
    )


def measure_snapshot_put(db, snapshot_path, ops=3):
    def one(i):
        db.put(b"snap-bench-%d" % i, b"x")
        save_database(db, snapshot_path)

    return _time_per_op(one, ops)


def test_wal_commit_is_o_delta(loaded_root, tmp_path):
    """Per-put durable commit ≥ 10× faster than snapshot-per-op."""
    root, ddb = loaded_root
    wal_per_op = measure_wal_put(ddb)
    # The legacy path: same data, whole-snapshot rewrite per mutation.
    legacy = SpitzDatabase()
    legacy.put_batch(_records(N_KEYS))
    snapshot_per_op = measure_snapshot_put(legacy, tmp_path / "db.spitz")
    ratio = snapshot_per_op / wal_per_op
    assert ratio >= 10, (
        f"WAL put {wal_per_op * 1e3:.2f} ms vs snapshot put "
        f"{snapshot_per_op * 1e3:.2f} ms — only {ratio:.1f}x"
    )


def test_group_commit_beats_per_record_fsync(tmp_path):
    """Batched fsync (group commit, batch 8) > fsync per record."""
    payload = ([(b"key", b"value" * 8)], (), 1)
    counts = {}
    for label, sync_every in (("per-record", 1), ("group-8", 8)):
        wal = WriteAheadLog(tmp_path / label, sync_every=sync_every)
        per_op = _time_per_op(
            lambda i: wal.append("commit", payload), 400
        )
        wal.close()
        counts[label] = per_op
    assert counts["group-8"] < counts["per-record"], (
        f"group commit {counts['group-8'] * 1e6:.1f} us/op not faster "
        f"than per-record fsync {counts['per-record'] * 1e6:.1f} us/op"
    )


def test_checkpoint_bounds_recovery(tmp_path):
    """Recovery replays the post-checkpoint suffix only."""
    root = tmp_path / "db"
    suffix_ops = 20
    with DurableDatabase.open(root) as ddb:
        for i in range(300):
            ddb.put(b"k%d" % i, b"v")
        full_replay_start = time.perf_counter()
    full = recover(root)
    full_time = time.perf_counter() - full_replay_start
    assert full.replayed == 300

    with DurableDatabase.open(root) as ddb:
        ddb.checkpoint()
        for i in range(suffix_ops):
            ddb.put(b"s%d" % i, b"v")
    bounded_start = time.perf_counter()
    bounded = recover(root)
    bounded_time = time.perf_counter() - bounded_start
    assert bounded.replayed == suffix_ops
    # Time tracks log length; report it for the standalone table.
    test_checkpoint_bounds_recovery.times = (full_time, bounded_time)


def main():
    print(f"resident keys: {N_KEYS}")
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        ddb = DurableDatabase.open(tmp / "durable")
        ddb.put_batch(_records(N_KEYS))
        wal_per_op = measure_wal_put(ddb)
        ddb.close()

        legacy = SpitzDatabase()
        legacy.put_batch(_records(N_KEYS))
        snapshot_per_op = measure_snapshot_put(legacy, tmp / "db.spitz")

        print(f"{'durable put (WAL, fsync/commit)':<36}"
              f"{wal_per_op * 1e3:>10.3f} ms/op")
        print(f"{'legacy put (snapshot rewrite)':<36}"
              f"{snapshot_per_op * 1e3:>10.3f} ms/op")
        print(f"{'speedup':<36}{snapshot_per_op / wal_per_op:>10.1f} x")

        payload = ([(b"key", b"value" * 8)], (), 1)
        for sync_every in (1, 2, 4, 8, 16, 64):
            wal = WriteAheadLog(
                tmp / f"wal-{sync_every}", sync_every=sync_every
            )
            per_op = _time_per_op(
                lambda i: wal.append("commit", payload), 1000
            )
            wal.close()
            print(f"{'group commit batch %3d' % sync_every:<36}"
                  f"{1 / per_op:>10.0f} commits/s")

        for log_length in (100, 400, 1600):
            root = tmp / f"recovery-{log_length}"
            with DurableDatabase.open(root) as db:
                for i in range(log_length):
                    db.put(b"k%d" % i, b"v")
            start = time.perf_counter()
            report = recover(root)
            elapsed = time.perf_counter() - start
            print(f"{'recovery, %5d-record log' % log_length:<36}"
                  f"{elapsed * 1e3:>10.1f} ms "
                  f"({report.replayed} replayed)")


if __name__ == "__main__":
    main()
