"""Ablation 6 — integration-path costs (Section 4).

The intrusive design (Figure 4) avoids per-request channel crossings
but pays a one-time migration; the non-intrusive design (Figure 3)
deploys instantly but pays per request.  This bench quantifies both
sides of the trade-off the paper asks deployers to weigh.
"""

import pytest

from repro.integration.intrusive import migrate_kvs_to_spitz
from repro.kvstore.kvs import ImmutableKVS
from repro.workloads.generator import WorkloadGenerator

N = 1500


def _loaded_kvs():
    gen = WorkloadGenerator(N, seed=13)
    kvs = ImmutableKVS()
    for key, value in gen.records():
        kvs.put(key, value)
    # Add some version history so migration has depth to move.
    for op in gen.writes(N // 4):
        kvs.put(op.key, op.value)
    return kvs


def test_migration_with_history(benchmark):
    """The Figure 4 entry fee: full-history migration into Spitz."""
    spitz = benchmark.pedantic(
        lambda: migrate_kvs_to_spitz(_loaded_kvs()),
        rounds=1,
        iterations=1,
    )
    assert spitz.ledger.height > 0


def test_migration_current_state_only(benchmark):
    """The cheaper migration that forfeits pre-migration provenance."""
    spitz = benchmark.pedantic(
        lambda: migrate_kvs_to_spitz(
            _loaded_kvs(), include_history=False
        ),
        rounds=1,
        iterations=1,
    )
    assert spitz.ledger.height > 0


def test_migration_break_even_analysis():
    """How many verified reads until the migration pays for itself
    against the non-intrusive per-request overhead.  Printed as
    documentation; asserted only for sanity."""
    import time

    from repro.core.verifier import ClientVerifier
    from repro.integration.nonintrusive import NonIntrusiveVDB

    gen = WorkloadGenerator(600, seed=17)
    records = list(gen.records())

    kvs = ImmutableKVS()
    noni = NonIntrusiveVDB()
    for key, value in records:
        kvs.put(key, value)
        noni.put(key, value)

    start = time.perf_counter()
    spitz = migrate_kvs_to_spitz(kvs, include_history=False)
    migration_cost = time.perf_counter() - start

    verifier = ClientVerifier()
    verifier.trust(spitz.digest())
    noni_verifier = ClientVerifier()
    noni_verifier.trust(noni.digest())
    keys = [op.key for op in gen.reads(100)]

    start = time.perf_counter()
    for key in keys:
        _value, proof = spitz.get_verified(key)
        verifier.verify_or_raise(proof)
    spitz_cost = (time.perf_counter() - start) / len(keys)

    start = time.perf_counter()
    for key in keys:
        _value, proof, digest = noni.get_verified(key)
        noni_verifier.observe(digest)
        noni_verifier.verify_or_raise(proof)
    noni_cost = (time.perf_counter() - start) / len(keys)

    assert noni_cost > spitz_cost
    break_even = migration_cost / (noni_cost - spitz_cost)
    assert break_even > 0
