"""Figure 7 — range queries at 0.1% selectivity.

The headline here is the verified-range gap: Spitz returns one proof
covering the whole result batch from its unified index, while the
baseline must retrieve each record's proof from the journal
individually (Section 6.2.2).
"""

import itertools

import pytest


def _scan_cycle(gen, count=64, selectivity=0.005):
    # Slightly higher selectivity than the paper's 0.1% so the result
    # sets are non-trivial at benchmark scale.
    return itertools.cycle(list(gen.range_scans(count, selectivity)))


def test_range_immutable_kvs(benchmark, gen, kvs):
    ops = _scan_cycle(gen)

    def scan():
        op = next(ops)
        return kvs.scan(op.key, op.high)

    benchmark(scan)


def test_range_spitz(benchmark, gen, spitz):
    ops = _scan_cycle(gen)

    def scan():
        op = next(ops)
        return spitz.scan(op.key, op.high)

    benchmark(scan)


def test_range_spitz_verify(benchmark, gen, spitz, spitz_verifier):
    ops = _scan_cycle(gen)

    def verified_scan():
        op = next(ops)
        entries, proof = spitz.scan_verified(op.key, op.high)
        spitz_verifier.verify_or_raise(proof)
        return entries

    benchmark(verified_scan)


def test_range_baseline(benchmark, gen, baseline):
    ops = _scan_cycle(gen)

    def scan():
        op = next(ops)
        return baseline.scan(op.key, op.high)

    benchmark(scan)


def test_range_baseline_verify(benchmark, gen, baseline):
    ops = _scan_cycle(gen, count=8)
    root = baseline.digest()

    def verified_scan():
        op = next(ops)
        entries, proofs = baseline.scan_verified(op.key, op.high)
        for proof in proofs:
            assert proof.verify(root)
        return entries

    benchmark(verified_scan)
