"""Figure 8 — the non-intrusive design vs Spitz.

Reads: Spitz answers in-process from the unified index; the
non-intrusive design pays one round trip to the underlying database
plus one to the ledger database.  Writes: Spitz commits once; the
non-intrusive design stages, appends and commits across two systems
(three round trips).
"""

import itertools

import pytest

from repro.core.verifier import ClientVerifier


def _read_cycle(gen, count=256):
    return itertools.cycle([op.key for op in gen.reads(count)])


def _write_cycle(gen, count=512):
    return itertools.cycle(list(gen.writes(count)))


def test_fig8_read_spitz(benchmark, gen, spitz):
    keys = _read_cycle(gen)
    benchmark(lambda: spitz.get(next(keys)))


def test_fig8_read_spitz_verify(benchmark, gen, spitz, spitz_verifier):
    keys = _read_cycle(gen)

    def verified_read():
        value, proof = spitz.get_verified(next(keys))
        spitz_verifier.verify_or_raise(proof)
        return value

    benchmark(verified_read)


def test_fig8_read_nonintrusive(benchmark, gen, nonintrusive):
    keys = _read_cycle(gen)
    benchmark(lambda: nonintrusive.get(next(keys)))


def test_fig8_read_nonintrusive_verify(benchmark, gen, nonintrusive):
    keys = _read_cycle(gen)
    verifier = ClientVerifier()
    verifier.trust(nonintrusive.digest())

    def verified_read():
        value, proof, digest = nonintrusive.get_verified(next(keys))
        verifier.observe(digest)
        verifier.verify_or_raise(proof)
        return value

    benchmark(verified_read)


def test_fig8_write_spitz(benchmark, gen, spitz):
    ops = _write_cycle(gen)

    def write():
        op = next(ops)
        spitz.put(op.key, op.value)

    benchmark(write)


def test_fig8_write_nonintrusive(benchmark, gen, nonintrusive):
    ops = _write_cycle(gen)

    def write():
        op = next(ops)
        nonintrusive.put(op.key, op.value)

    benchmark(write)
