"""Ablation 4 — content-defined vs fixed-size chunking (extends Fig 1).

Figure 1's dedup gain depends on the chunker resynchronizing after
localized edits.  This ablation measures the dedup ratio and the
chunking throughput of both strategies on the wiki workload.
"""

import pytest

from repro.forkbase.chunker import FixedSizeChunker, RollingChunker
from repro.forkbase.store import ForkBase
from repro.workloads.wiki import WikiWorkload


def _dedup_ratio(chunker, versions=30):
    wiki = WikiWorkload(seed=11)
    store = ForkBase(chunker=chunker)
    for page, content in wiki.initial_pages():
        store.put(page, content)
    store.commit("v1")
    for edit in wiki.edits(versions):
        store.put(edit.page, edit.content)
        store.commit(f"v{edit.version}")
    return store.stats.dedup_ratio


@pytest.mark.parametrize(
    "label,chunker",
    [
        ("rolling", RollingChunker()),
        ("fixed-4k", FixedSizeChunker(4096)),
        ("fixed-512", FixedSizeChunker(512)),
    ],
)
def test_chunking_throughput(benchmark, label, chunker):
    wiki = WikiWorkload(seed=11)
    pages = [content for _page, content in wiki.initial_pages()]

    def chunk_all():
        return [chunker.split(page) for page in pages]

    benchmark(chunk_all)


def test_rolling_dedup_beats_fixed():
    rolling = _dedup_ratio(RollingChunker())
    fixed = _dedup_ratio(FixedSizeChunker(4096))
    assert rolling > fixed
    assert rolling > 1.5


@pytest.mark.parametrize("mask_bits", [8, 11, 14])
def test_rolling_chunk_size_sweep(benchmark, mask_bits):
    """Expected chunk size (2^mask_bits) vs chunking cost."""
    chunker = RollingChunker(mask_bits=mask_bits)
    wiki = WikiWorkload(seed=11)
    pages = [content for _page, content in wiki.initial_pages()]
    benchmark(lambda: [chunker.split(page) for page in pages])
