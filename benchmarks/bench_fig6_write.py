"""Figure 6(b) — write-only throughput, single thread.

Same five configurations as 6(a), measuring updates of existing keys.
Spitz runs under the deferred scheme (Section 5.3): ledger blocks of
64 writes, verified writes batched through
:class:`~repro.core.verifier.VerifiedWriter`.
"""

import itertools

import pytest

from repro.core.verifier import ClientVerifier, VerifiedWriter


def _write_cycle(gen, count=512):
    ops = list(gen.writes(count))
    return itertools.cycle(ops)


def test_write_immutable_kvs(benchmark, gen, kvs):
    ops = _write_cycle(gen)

    def write():
        op = next(ops)
        kvs.put(op.key, op.value)

    benchmark(write)


def test_write_spitz(benchmark, gen, spitz):
    ops = _write_cycle(gen)

    def write():
        op = next(ops)
        spitz.put(op.key, op.value)

    benchmark(write)


def test_write_spitz_verify(benchmark, gen, spitz):
    ops = _write_cycle(gen)
    verifier = ClientVerifier()
    verifier.trust(spitz.digest())
    writer = VerifiedWriter(spitz, verifier, batch_size=64)

    def write():
        op = next(ops)
        writer.put(op.key, op.value)

    benchmark(write)
    writer.flush()


def test_write_baseline(benchmark, gen, baseline):
    ops = _write_cycle(gen)

    def write():
        op = next(ops)
        baseline.put(op.key, op.value)

    benchmark(write)


def test_write_baseline_verify(benchmark, gen, baseline):
    ops = _write_cycle(gen)

    def write():
        op = next(ops)
        baseline.put(op.key, op.value)
        _value, proof = baseline.get_verified(op.key)
        assert proof.verify(baseline.digest())

    benchmark(write)
