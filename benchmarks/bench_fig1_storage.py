"""Figure 1 — storage growth with version count (wiki workload).

Regenerates the paper's introductory figure: 10 wiki pages of 16 KB,
one localized edit per version; naive snapshot storage vs ForkBase's
content-based deduplication.  The benchmarked operation is storing one
full version round (Figure 1's unit of work); the storage-size series
itself is printed by ``python -m repro.bench.harness --figure 1``.
"""

import pytest

from repro.forkbase.chunker import FixedSizeChunker, RollingChunker
from repro.forkbase.store import ForkBase
from repro.workloads.wiki import WikiWorkload


def _load_versions(chunker, versions=20):
    wiki = WikiWorkload(seed=7)
    store = ForkBase(chunker=chunker)
    for page, content in wiki.initial_pages():
        store.put(page, content)
    store.commit("v1")
    for edit in wiki.edits(versions):
        store.put(edit.page, edit.content)
        store.commit(f"v{edit.version}")
    return store


def test_forkbase_versioned_store_dedup(benchmark):
    """Store 20 wiki versions with content-defined chunking."""
    store = benchmark(_load_versions, RollingChunker())
    report = store.storage_report()
    assert report["dedup_ratio"] > 1.5


def test_forkbase_versioned_store_fixed_chunks(benchmark):
    """Ablation: same load with fixed-size chunking (weaker dedup)."""
    store = benchmark(_load_versions, FixedSizeChunker(4096))
    assert store.storage_report()["physical_bytes"] > 0


def test_fig1_shape_dedup_beats_naive():
    """Shape assertion: ForkBase beats the naive snapshot store and
    content-defined chunking beats fixed-size chunking."""
    from repro.workloads.wiki import naive_storage_bytes

    wiki = WikiWorkload(seed=7)
    initial = wiki.initial_pages()
    edits = wiki.edits(30)
    naive = naive_storage_bytes(initial, edits)
    rolling = _load_versions(RollingChunker(), 30)
    fixed = _load_versions(FixedSizeChunker(4096), 30)
    assert rolling.stats.physical_bytes < naive
    assert rolling.stats.physical_bytes < fixed.stats.physical_bytes
