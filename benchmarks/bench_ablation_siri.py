"""Ablation 2 — SIRI member choice for the ledger index.

The paper (citing [59]) states POS-tree has the best overall
performance among the SIRI family.  This ablation measures all three
members on the same workload: batch updates, point lookups, and
verified lookups.
"""

import itertools

import pytest

from repro.forkbase.chunk_store import ChunkStore
from repro.indexes.mbt import MerkleBucketTree
from repro.indexes.mpt import MerklePatriciaTrie
from repro.indexes.pos_tree import PosTree
from repro.workloads.generator import WorkloadGenerator

N = 2000


def _records():
    gen = WorkloadGenerator(N, seed=5)
    return gen, dict(gen.records())


def _build(kind):
    gen, records = _records()
    store = ChunkStore()
    if kind == "pos":
        index = PosTree.from_items(store, list(records.items()))
    elif kind == "mpt":
        index = MerklePatriciaTrie.from_items(store, records.items())
    else:
        index = MerkleBucketTree.from_items(
            store, records.items(), buckets=256
        )
    return gen, index


@pytest.mark.parametrize("kind", ["pos", "mpt", "mbt"])
def test_siri_batch_update(benchmark, kind):
    gen, index = _build(kind)
    batches = itertools.cycle(
        [
            {op.key: op.value for op in gen.writes(32)}
            for _ in range(16)
        ]
    )
    state = {"index": index}

    def update():
        state["index"] = state["index"].apply(next(batches))

    benchmark(update)


@pytest.mark.parametrize("kind", ["pos", "mpt", "mbt"])
def test_siri_point_lookup(benchmark, kind):
    gen, index = _build(kind)
    keys = itertools.cycle([op.key for op in gen.reads(256)])
    benchmark(lambda: index.get(next(keys)))


@pytest.mark.parametrize("kind", ["pos", "mpt", "mbt"])
def test_siri_lookup_with_proof(benchmark, kind):
    gen, index = _build(kind)
    keys = itertools.cycle([op.key for op in gen.reads(256)])
    benchmark(lambda: index.get_with_proof(next(keys)))


def test_only_pos_tree_serves_range_proofs():
    """The qualitative part of the choice: hash-ordered MBT and
    nibble-path MPT cannot answer a key-range scan with one covering
    proof; the POS-tree can — which is what Figure 7 exploits."""
    _gen, index = _build("pos")
    low, high = sorted([k for k, _ in list(index.items())[:50]])[0], None
    entries = list(index.items())[:50]
    low, high = entries[0][0], entries[-1][0]
    scanned, proof = index.scan_with_proof(low, high)
    assert len(scanned) == 50
    assert proof.verify(index.root)
    assert not hasattr(MerkleBucketTree, "scan_with_proof")
    assert not hasattr(MerklePatriciaTrie, "scan_with_proof")
