"""Mixed read/write workloads (YCSB-style A/B/C mixes).

The paper evaluates pure read-only and write-only workloads; real
deployments run mixes.  This extension measures Spitz and the baseline
under the classic mixes — A (50/50), B (95/5), C (100/0) — with and
without verification, plus a zipfian-contention variant exercising the
transactional path.
"""

import itertools

import pytest

from repro.core.verifier import ClientVerifier, VerifiedWriter
from repro.errors import TransactionAborted
from repro.workloads.generator import OpKind, WorkloadGenerator

MIXES = {"A-50/50": 0.5, "B-95/5": 0.95, "C-read-only": 1.0}


@pytest.mark.parametrize("mix", sorted(MIXES))
def test_mixed_spitz(benchmark, gen, spitz, mix):
    ops = itertools.cycle(list(gen.mixed(512, MIXES[mix])))

    def step():
        op = next(ops)
        if op.kind is OpKind.READ:
            spitz.get(op.key)
        else:
            spitz.put(op.key, op.value)

    benchmark(step)


@pytest.mark.parametrize("mix", sorted(MIXES))
def test_mixed_spitz_verified(benchmark, gen, spitz, mix):
    ops = itertools.cycle(list(gen.mixed(512, MIXES[mix])))
    verifier = ClientVerifier()
    verifier.trust(spitz.digest())
    writer = VerifiedWriter(spitz, verifier, batch_size=64)

    def step():
        op = next(ops)
        if op.kind is OpKind.READ:
            value, proof = spitz.get_verified(op.key)
            # Reads race the writer's unsealed batch; observe the
            # digest the proof was issued under before checking.
            verifier.observe(spitz.digest())
            verifier.verify_or_raise(proof)
        else:
            writer.put(op.key, op.value)

    benchmark(step)
    writer.flush()


@pytest.mark.parametrize("mix", sorted(MIXES))
def test_mixed_baseline(benchmark, gen, baseline, mix):
    ops = itertools.cycle(list(gen.mixed(512, MIXES[mix])))

    def step():
        op = next(ops)
        if op.kind is OpKind.READ:
            baseline.get(op.key)
        else:
            baseline.put(op.key, op.value)

    benchmark(step)


def test_transactional_mix_under_contention(benchmark, spitz):
    """Read-modify-write transactions over a zipf-hot keyspace —
    the Section 3.3 e-commerce pattern on the real database."""
    gen = WorkloadGenerator(200, seed=21, zipf=True)
    hot_keys = itertools.cycle([op.key for op in gen.reads(256)])
    for key in set(gen.keys):
        spitz.put(key, b"0")

    def transact():
        key = next(hot_keys)
        try:
            with spitz.transaction() as txn:
                current = txn.get(key) or b"0"
                txn.put(key, str(int(current) + 1).encode())
        except TransactionAborted:
            pass  # single-threaded here, but keep the pattern honest

    benchmark(transact)
