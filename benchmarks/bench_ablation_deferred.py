"""Ablation 3 — deferred vs online verification (Section 5.3).

"To improve verification throughput, we use a deferred scheme, which
means the transactions are verified asynchronously in batch."  The
sweep measures verified-read cost at batch sizes 1 (online) through
128, plus the verified-writer batch effect.
"""

import itertools

import pytest

from repro.core.verifier import ClientVerifier, VerifiedWriter


@pytest.mark.parametrize("batch_size", [1, 8, 32, 128])
def test_deferred_verified_reads(benchmark, gen, spitz, batch_size):
    keys = itertools.cycle([op.key for op in gen.reads(256)])
    verifier = ClientVerifier(
        deferred=batch_size > 1, batch_size=batch_size
    )
    verifier.trust(spitz.digest())

    def verified_read():
        value, proof = spitz.get_verified(next(keys))
        verifier.verify(proof)
        return value

    benchmark(verified_read)
    verifier.flush()


@pytest.mark.parametrize("batch_size", [1, 16, 64])
def test_deferred_verified_writes(benchmark, gen, spitz, batch_size):
    ops = itertools.cycle(list(gen.writes(512)))
    verifier = ClientVerifier()
    verifier.trust(spitz.digest())
    writer = VerifiedWriter(spitz, verifier, batch_size=batch_size)

    def verified_write():
        op = next(ops)
        writer.put(op.key, op.value)

    benchmark(verified_write)
    writer.flush()


def test_deferred_amortizes_shared_path_checks():
    """Quantitative claim behind the scheme: consecutive proofs share
    the ledger's upper nodes, so a warm verifier checks fewer raw
    bytes per proof than a cold one."""
    import time

    from repro.core.database import SpitzDatabase
    from repro.workloads.generator import WorkloadGenerator

    gen = WorkloadGenerator(4000, seed=9)
    db = SpitzDatabase(block_batch=64)
    for key, value in gen.records():
        db.put(key, value)
    db.flush_ledger()
    keys = [op.key for op in gen.reads(400)]
    proofs = [db.get_verified(key)[1] for key in keys]
    digest = db.digest()

    cold_verifier = ClientVerifier()
    cold_verifier.trust(digest)
    start = time.perf_counter()
    for proof in proofs[:100]:
        assert cold_verifier.verify(proof)
    cold = time.perf_counter() - start

    # Same verifier, now warm: the shared upper levels are cached.
    start = time.perf_counter()
    for proof in proofs[100:400]:
        assert cold_verifier.verify(proof)
    warm = (time.perf_counter() - start) / 3

    assert warm < cold
