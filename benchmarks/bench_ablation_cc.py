"""Ablation 5 — concurrency-control certifier comparison.

Section 5.2 sketches the study the paper defers: abort rates and
throughput for MVCC+OCC, MVCC+2PL and MVCC+T/O under contention.
Zipfian key choice concentrates conflicts; the abort-rate assertions
document the expected qualitative ordering.
"""

import threading

import pytest

from repro.errors import TransactionAborted
from repro.txn.manager import TransactionManager
from repro.txn.mvcc import MVCCStore
from repro.txn.occ import OccCertifier
from repro.txn.oracle import TimestampOracle
from repro.txn.timestamp_ordering import TimestampOrderingCertifier
from repro.txn.two_pl import LockManager, TwoPhaseLockingCertifier
from repro.workloads.distributions import ZipfChooser

KEYS = 64
TXNS = 300


def _make_manager(kind):
    store = MVCCStore()
    oracle = TimestampOracle()
    if kind == "occ":
        certifier = OccCertifier(store)
    elif kind == "2pl":
        certifier = TwoPhaseLockingCertifier(LockManager())
    else:
        certifier = TimestampOrderingCertifier()
    manager = TransactionManager(store, oracle, certifier)
    for i in range(KEYS):
        manager.run(lambda t, i=i: t.write(f"k{i}", 0))
    return manager


def _contended_run(manager, seed=0, txns=TXNS, threads=4):
    """Run read-modify-write transactions over zipf-hot keys."""
    chooser = ZipfChooser(KEYS, theta=0.9, seed=seed)
    lock = threading.Lock()
    with lock:
        picks = [
            (chooser.next(), chooser.next()) for _ in range(txns)
        ]
    cursor = iter(picks)

    def worker():
        while True:
            with lock:
                pick = next(cursor, None)
            if pick is None:
                return
            first, second = pick

            def work(txn):
                a = txn.read(f"k{first}")
                b = txn.read(f"k{second}")
                txn.write(f"k{first}", a + 1)
                txn.write(f"k{second}", b + 1)

            try:
                manager.run(work, retries=50)
            except TransactionAborted:
                pass

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return manager


@pytest.mark.parametrize("kind", ["occ", "2pl", "to"])
def test_certifier_contended_throughput(benchmark, kind):
    def run():
        return _contended_run(_make_manager(kind))

    manager = benchmark.pedantic(run, rounds=1, iterations=1)
    assert manager.committed > 0


def test_abort_rates_ordering():
    """T/O aborts eagerly (start-timestamp order is strict), OCC only
    at commit, 2PL mostly blocks instead of aborting."""
    rates = {}
    for kind in ("occ", "2pl", "to"):
        manager = _contended_run(_make_manager(kind), seed=3)
        rates[kind] = manager.abort_rate
    assert rates["2pl"] <= rates["occ"] + 0.35
    assert all(0 <= rate < 1 for rate in rates.values())
