"""Quickstart: a verifiable key-value store in ten minutes.

Covers the core loop of every Spitz application:

1. write data (every write is sealed into a hash-chained ledger block);
2. read it back *with a proof*;
3. verify the proof against the digest you trust;
4. watch verification fail when someone lies to you;
5. time-travel: read any historical state, verifiably.

Run:  python examples/quickstart.py
"""

from repro import ClientVerifier, SpitzDatabase, TamperDetectedError
from repro.core.proofs import LedgerProof
from repro.indexes.siri import SiriProof


def main() -> None:
    db = SpitzDatabase()

    # -- 1. write ----------------------------------------------------------
    print("== writing ==")
    for name, balance in [(b"alice", b"100"), (b"bob", b"250")]:
        block = db.put(b"account:" + name, balance)
        print(f"  put account:{name.decode()} -> block #{block.height}")

    # The client pins the ledger digest it currently trusts.  In a real
    # deployment this arrives out of band (gossip, a bulletin board, a
    # regulator's feed) so the server cannot rewrite history unnoticed.
    client = ClientVerifier()
    client.trust(db.digest())
    print(f"  trusted digest: height={client.trusted_digest.height}, "
          f"chain={client.trusted_digest.chain_digest.short}")

    # -- 2 & 3. verified read ------------------------------------------------
    print("\n== verified read ==")
    value, proof = db.get_verified(b"account:alice")
    client.verify_or_raise(proof)
    print(f"  account:alice = {value.decode()}  "
          f"(proof: {len(proof.siri.nodes)} nodes, "
          f"{proof.size_bytes} bytes) .. VERIFIED")

    # Absence is provable too: no server can claim a key is missing
    # when it exists (or vice versa) without breaking the proof.
    value, proof = db.get_verified(b"account:mallory")
    client.verify_or_raise(proof)
    print(f"  account:mallory = {value}  (proven absent) .. VERIFIED")

    # -- 4. tamper detection ---------------------------------------------------
    print("\n== tamper detection ==")
    _value, honest = db.get_verified(b"account:alice")
    forged = LedgerProof(
        siri=SiriProof(
            key=honest.siri.key, value=b"1000000", nodes=honest.siri.nodes
        ),
        block=honest.block,
    )
    try:
        client.verify_or_raise(forged)
    except TamperDetectedError as error:
        print(f"  forged balance rejected: {error}")

    # -- 5. history and time travel ----------------------------------------------
    print("\n== history ==")
    db.put(b"account:alice", b"75")   # alice spends 25
    db.delete(b"account:bob")         # bob closes the account
    client.observe(db.digest())       # client follows the digest

    for timestamp, value in db.history(b"account:alice"):
        print(f"  alice @ ts {timestamp}: {value.decode()}")

    past = db.ledger.height - 3
    old_bob, proof = db.get_at_block_verified(b"account:bob", past)
    assert proof.verify(db.ledger.block(past).chain_digest)
    print(f"  bob as of block #{past}: {old_bob.decode()} "
          "(verified against that block's digest)")
    print(f"  bob now: {db.get(b'account:bob')}")

    # -- full audit -------------------------------------------------------------
    assert db.verify_chain()
    print("\n== full-chain audit passed ==")


if __name__ == "__main__":
    main()
