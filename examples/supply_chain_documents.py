"""Supply chain: JSON documents, offline evidence, replica audits.

Logistics is one of the paper's target applications (Figure 2:
"Logistic Orders").  A shipment passes through parties that do not
trust each other; each custody transfer is recorded as a new version
of the shipment document.  This example exercises the reproduction's
extension surface:

- the self-defined JSON schema interface (Section 5.1) via
  :class:`~repro.core.documents.DocumentStore`;
- offline evidence packages (:func:`make_bundle` /
  :func:`verify_bundle`) a party can hand to an arbitrator;
- replica comparison (:func:`compare_replicas`) catching a partner
  that forked its copy of the ledger;
- snapshot persistence (save/load with integrity checking).

Run:  python examples/supply_chain_documents.py
"""

import tempfile
from pathlib import Path

from repro import (
    DocumentStore,
    compare_replicas,
    load_database,
    make_bundle,
    save_database,
    verify_bundle,
)
from repro.core.audit import ProofBundle


def main() -> None:
    store = DocumentStore()
    shipments = store.collection(
        "shipments",
        schema={
            "required": ["sku", "custodian", "status"],
            "types": {"sku": "str", "custodian": "str",
                      "temperature_c": "float"},
        },
    )

    # -- custody chain ---------------------------------------------------
    print("== custody chain for shipment SH-001 ==")
    legs = [
        {"sku": "vaccine-lot-77", "custodian": "factory",
         "status": "packed", "temperature_c": 4.0},
        {"sku": "vaccine-lot-77", "custodian": "air-freight",
         "status": "in-transit", "temperature_c": 5.5},
        {"sku": "vaccine-lot-77", "custodian": "cold-store-oslo",
         "status": "warehoused", "temperature_c": 3.8},
        {"sku": "vaccine-lot-77", "custodian": "clinic-14",
         "status": "delivered", "temperature_c": 4.2},
    ]
    for leg in legs:
        shipments.put("SH-001", leg)
        print(f"  {leg['custodian']:16s} -> {leg['status']}")

    print("\nfull custody history (from the ledger):")
    for height, state in shipments.history("SH-001"):
        if state:
            print(f"  block #{height}: {state['custodian']} "
                  f"({state['temperature_c']}°C)")

    # -- find: which shipments got too warm? --------------------------------
    shipments.put("SH-002", {"sku": "vaccine-lot-78",
                             "custodian": "air-freight",
                             "status": "in-transit",
                             "temperature_c": 9.5})
    warm = shipments.find("temperature_c", low=8.0, high=100.0)
    print("\nshipments above 8°C:", [doc_id for doc_id, _ in warm])

    # -- offline evidence for the arbitrator -----------------------------------
    print("\n== evidence bundle ==")
    store.db.flush_ledger()
    key = shipments._key("SH-001")
    bundle = make_bundle(
        store.db.ledger, key, "final custody state of SH-001"
    )
    blob = bundle.serialize()
    print(f"  bundle: {len(blob)} bytes, claim: {bundle.description!r}")
    # The arbitrator, offline, holding only the published digest:
    restored = ProofBundle.deserialize(blob)
    ok, message = verify_bundle(restored, trusted=store.db.digest())
    print(f"  arbitrator check: {message}")
    assert ok

    # -- replica audit ------------------------------------------------------------
    print("\n== replica audit ==")
    honest = DocumentStore()
    crooked = DocumentStore()
    for replica in (honest, crooked):
        c = replica.collection("shipments")
        c.put("SH-001", legs[0])
        c.put("SH-001", legs[1])
    # The crooked partner rewrites history: the shipment "never" left
    # the factory cold chain.
    crooked.collection("shipments").put(
        "SH-001", {"sku": "vaccine-lot-77", "custodian": "factory",
                   "status": "packed", "temperature_c": 4.0}
    )
    honest.collection("shipments").put("SH-001", legs[2])
    report = compare_replicas(honest.db.ledger, crooked.db.ledger)
    print(f"  consistent: {report.consistent}")
    print(f"  {report.detail}")
    assert not report.consistent

    # -- snapshot persistence ---------------------------------------------------------
    print("\n== snapshot persistence ==")
    path = Path(tempfile.mkdtemp()) / "supply-chain.spitz"
    size = save_database(store.db, path)
    reloaded = load_database(path)
    assert reloaded.digest() == store.db.digest()
    print(f"  saved {size} bytes; reload digest matches; "
          "tampered snapshots raise TamperDetectedError")


if __name__ == "__main__":
    main()
