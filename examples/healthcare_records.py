"""Healthcare records: immutable provenance for patient data.

The paper's Section 1 motivation: "health data needs to be kept for
the lifetime of a patient, and each diagnosis, lab test, prescription,
etc., is appended to the patient profile.  Disease and procedure
coding standards evolve over time, e.g., from ICD-9-CM to ICD-10."

This example shows:
- SQL tables over Spitz, with every statement sealed into the ledger;
- the ICD-9 -> ICD-10 coding migration as new *versions* (the old
  records stay queryable and verifiable forever);
- temporal queries (`AS OF BLOCK`) and per-row history;
- a hospital auditor verifying a record against the ledger digest;
- storage staying sub-linear in versions thanks to deduplication.

Run:  python examples/healthcare_records.py
"""

from repro import ClientVerifier, SpitzDatabase
from repro.core.query import Condition, Op


def main() -> None:
    db = SpitzDatabase()

    # -- schema -------------------------------------------------------------
    db.sql(
        "CREATE TABLE records (id INT, patient STR, code STR, "
        "description STR, severity INT, PRIMARY KEY (id))"
    )

    # -- 2009: diagnoses recorded under ICD-9-CM ------------------------------
    icd9_rows = [
        (1, "patient-007", "ICD9-250.00", "diabetes mellitus type 2", 2),
        (2, "patient-007", "ICD9-401.9", "essential hypertension", 1),
        (3, "patient-042", "ICD9-493.90", "asthma unspecified", 1),
    ]
    for row in icd9_rows:
        db.sql(
            "INSERT INTO records (id, patient, code, description, severity)"
            f" VALUES ({row[0]}, '{row[1]}', '{row[2]}', '{row[3]}',"
            f" {row[4]})"
        )
    icd9_era = db.ledger.height - 1
    print(f"ICD-9 era sealed through block #{icd9_era}")

    # -- 2015: the ICD-10 migration -------------------------------------------
    # Immutability means the migration *appends* new versions; nothing
    # is rewritten in place.
    migrations = {
        "ICD9-250.00": "ICD10-E11.9",
        "ICD9-401.9": "ICD10-I10",
        "ICD9-493.90": "ICD10-J45.909",
    }
    for old, new in migrations.items():
        count = db.update(
            "records",
            {"code": new},
            (Condition("code", Op.EQ, old),),
        )
        print(f"  migrated {old} -> {new} ({count} rows)")

    # -- querying both eras ------------------------------------------------------
    print("\ncurrent codes for patient-007:")
    for row in db.sql(
        "SELECT id, code FROM records WHERE patient = 'patient-007'"
    ):
        print(f"  record {row['id']}: {row['code']}")

    print(f"\nas of block #{icd9_era} (pre-migration):")
    for row in db.sql(
        "SELECT id, code FROM records WHERE patient = 'patient-007' "
        f"AS OF BLOCK {icd9_era}"
    ):
        print(f"  record {row['id']}: {row['code']}")

    # -- per-record provenance ------------------------------------------------------
    print("\nfull provenance of record 1:")
    for height, state in db.row_history("records", 1):
        code = state["code"] if state else "(not yet / deleted)"
        print(f"  block #{height}: {code}")

    # -- analytics over the verified store ----------------------------------------
    print("\ncase counts by current code:")
    for row in db.sql(
        "SELECT code, COUNT(*) FROM records GROUP BY code"
    ):
        print(f"  {row['code']}: {row['count(*)']}")

    # -- the auditor's check ----------------------------------------------------------
    print("\nauditor verification:")
    auditor = ClientVerifier()
    auditor.trust(db.digest())
    rows, proofs = db.select_verified(
        "records", 1, 3, columns=("patient", "code", "severity")
    )
    digest = db.digest().chain_digest
    assert all(proof.verify(digest) for proof in proofs)
    for row in rows:
        print(f"  VERIFIED {row}")
    assert db.verify_chain()
    print("  full-chain audit passed")

    # -- storage behaviour ---------------------------------------------------------------
    report = db.ledger.storage_report()
    print(
        f"\nstorage: {report['blocks']:.0f} blocks, "
        f"{report['physical_bytes'] / 1024:.1f} KB physical, "
        f"dedup ratio {report['dedup_ratio']:.2f}x"
    )


if __name__ == "__main__":
    main()
