"""Verifiable federated analytics across multiple hospitals.

The paper's Section 7.2 sketch (Figure 9): "a few hospitals want to
have a more precise and comprehensive analysis of a disease.  The
integrity of the data and queries are important in these use cases."

Each hospital runs its own Spitz instance; an analyst aggregates a
statistic across all of them.  Every per-hospital contribution arrives
as a verified range read, so a hospital (or the channel) cannot skew
the aggregate without detection — and the final report cites the exact
ledger digests it was computed against.

Run:  python examples/federated_analytics.py
"""

from repro import ClientVerifier, SpitzDatabase, TamperDetectedError

HOSPITALS = ("st-marys", "city-general", "lakeside")


def _load_hospital(name: str, seed: int) -> SpitzDatabase:
    """Each hospital records (patient -> hba1c level) readings."""
    db = SpitzDatabase()
    base = seed * 37 % 23
    for i in range(60):
        level = 40 + (i * seed + base) % 60  # mmol/mol readings
        db.put(f"hba1c:patient-{i:03d}".encode(), str(level).encode())
    return db


def main() -> None:
    hospitals = {
        name: _load_hospital(name, seed)
        for seed, name in enumerate(HOSPITALS, start=3)
    }

    # The analyst pins each hospital's current digest (obtained out of
    # band — e.g. published to a regulator's bulletin board).
    verifiers = {}
    for name, db in hospitals.items():
        verifier = ClientVerifier()
        verifier.trust(db.digest())
        verifiers[name] = verifier

    # -- federated aggregate: mean HbA1c across all hospitals ------------------
    print("== federated query: mean HbA1c, verified per hospital ==")
    total, count = 0, 0
    citations = {}
    for name, db in hospitals.items():
        entries, proof = db.scan_verified(b"hba1c:", b"hba1c:\xff")
        verifiers[name].verify_or_raise(proof)  # hospital can't skew
        values = [int(value) for _key, value in entries]
        total += sum(values)
        count += len(values)
        digest = db.digest()
        citations[name] = digest.chain_digest.short
        print(
            f"  {name}: n={len(values)}, "
            f"mean={sum(values) / len(values):.1f} .. VERIFIED"
        )
    print(f"  federated mean over {count} patients: {total / count:.2f}")
    print("  computed against digests:", citations)

    # -- a hospital tries to skew the result --------------------------------------
    print("\n== tamper attempt ==")
    target = hospitals["lakeside"]
    entries, proof = target.scan_verified(b"hba1c:", b"hba1c:\xff")
    import dataclasses

    # Drop the 10 highest readings from the claimed results.
    doctored = tuple(
        sorted(proof.range_proof.entries, key=lambda kv: int(kv[1]))[:-10]
    )
    forged_range = dataclasses.replace(
        proof.range_proof, entries=doctored
    )
    forged = dataclasses.replace(proof, range_proof=forged_range)
    try:
        verifiers["lakeside"].verify_or_raise(forged)
    except TamperDetectedError as error:
        print(f"  skewed contribution rejected: {error}")

    # -- confidentiality note -----------------------------------------------------
    print(
        "\nNote: integrity is what Spitz provides; cross-hospital\n"
        "confidentiality (Section 7.2's other requirement) would sit\n"
        "on top, e.g. via secure aggregation - out of scope here."
    )


if __name__ == "__main__":
    main()
