"""E-commerce with mixed isolation and dispute resolution.

The paper's Section 3.3 example: "purchases of the items must occur in
sequence to prevent double spending or shipping out-of-stock items
[serializable] ...  read committed isolation will be sufficient to
execute query 'getting all items with stock-level lower than 50'".

This example shows:
- serializable purchase transactions (no overselling under races);
- a read-committed dashboard query running beside them;
- the sellers/regulator resolving a dispute from the ledger: who
  bought the last unit, proven from history;
- a processor-node cluster serving requests from the message queue.

Run:  python examples/ecommerce_audit.py
"""

import threading

from repro import ClientVerifier, SpitzDatabase, TransactionAborted
from repro.txn.manager import IsolationLevel


def main() -> None:
    db = SpitzDatabase(block_batch=4)

    # -- catalog ----------------------------------------------------------
    db.sql(
        "CREATE TABLE inventory (sku STR, stock INT, price FLOAT, "
        "PRIMARY KEY (sku))"
    )
    db.sql(
        "INSERT INTO inventory (sku, stock, price) "
        "VALUES ('gpu-h300', 3, 2999.0)"
    )
    db.sql(
        "INSERT INTO inventory (sku, stock, price) "
        "VALUES ('kbd-blue', 40, 79.0)"
    )
    # Track remaining stock in the KV namespace for transactional CAS.
    db.put(b"stock:gpu-h300", b"3")
    db.flush_ledger()

    # -- concurrent purchases (serializable) ---------------------------------
    print("== 8 buyers race for 3 GPUs ==")
    outcomes = []
    lock = threading.Lock()

    def buy(buyer: str) -> None:
        try:
            with db.transaction(IsolationLevel.SERIALIZABLE) as txn:
                stock = int(txn.get(b"stock:gpu-h300"))
                if stock <= 0:
                    with lock:
                        outcomes.append((buyer, "out of stock"))
                    return
                txn.put(b"stock:gpu-h300", str(stock - 1).encode())
                txn.put(f"order:{buyer}".encode(), b"gpu-h300")
            with lock:
                outcomes.append((buyer, "purchased"))
        except TransactionAborted:
            with lock:
                outcomes.append((buyer, "retry-needed (conflict)"))

    buyers = [f"buyer-{i}" for i in range(8)]
    threads = [threading.Thread(target=buy, args=(b,)) for b in buyers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    purchased = [b for b, result in outcomes if result == "purchased"]
    for buyer, result in sorted(outcomes):
        print(f"  {buyer}: {result}")
    print(f"  units sold: {len(purchased)} (stock was 3 — no overselling)")
    assert len(purchased) <= 3
    assert int(db.get(b"stock:gpu-h300")) == 3 - len(purchased)

    # -- the dashboard (read committed is enough) --------------------------------
    print("\n== dashboard: items with stock below 50 ==")
    for row in db.sql("SELECT sku, stock FROM inventory WHERE stock < 50"):
        print(f"  {row['sku']}: {row['stock']} left")

    # -- dispute resolution from the ledger -----------------------------------------
    print("\n== dispute: who bought the last unit? ==")
    db.flush_ledger()
    regulator = ClientVerifier()
    regulator.trust(db.digest())
    history = db.ledger.key_history(b"k\x00stock:gpu-h300")
    print("  stock history:", [
        (height, value.decode()) for height, value in history
        if value is not None
    ])
    # Verified evidence for each successful order:
    for buyer in purchased:
        value, proof = db.get_verified(f"order:{buyer}".encode())
        regulator.verify_or_raise(proof)
        print(f"  VERIFIED order:{buyer} -> {value.decode()}")
    assert db.verify_chain()
    print("  chain audit passed; evidence is court-ready")


if __name__ == "__main__":
    main()
